package energy

import (
	"fmt"

	"upim/internal/artifact"
	"upim/internal/config"
	"upim/internal/isa"
	"upim/internal/stats"
)

// Component is one bucket of the energy breakdown.
type Component int

const (
	// Pipeline is per-issue front-end/execute energy, keyed by mix class.
	Pipeline Component = iota
	// RegFile is GPR array read/write energy.
	RegFile
	// WRAM is scratchpad load/store port energy.
	WRAM
	// IRAM is instruction-fetch energy (zero in cache mode, where fetches
	// are charged to the I-cache array instead).
	IRAM
	// Link is the MRAM<->WRAM datapath energy per byte moved.
	Link
	// DRAM is bank energy: activates, precharges, per-byte column traffic
	// and refreshes.
	DRAM
	// CacheArrays is I/D cache tag+data lookup energy (cache mode).
	CacheArrays
	// HostLink is CPU<->DPU channel transfer energy.
	HostLink
	// Leakage is static power integrated over each DPU's kernel cycles.
	Leakage

	NumComponents
)

var componentNames = [NumComponents]string{
	"pipeline", "rf", "wram", "iram", "link", "dram", "cache", "host", "leakage",
}

func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("component?%d", int(c))
}

// Components lists every breakdown bucket in display order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Report is one energy accounting: picojoules per component under a named
// profile. Reports from the same profile compose with Add, which is what
// makes per-DPU and per-window accountings sum to the bulk number.
type Report struct {
	// Profile names the TechProfile the report was computed under.
	Profile string
	// PJ is the per-component energy in picojoules.
	PJ [NumComponents]float64
}

// Add returns the component-wise sum (r's profile name is kept).
func (r Report) Add(o Report) Report {
	for i := range r.PJ {
		r.PJ[i] += o.PJ[i]
	}
	return r
}

// TotalPJ returns the summed energy in picojoules.
func (r Report) TotalPJ() float64 {
	t := 0.0
	for _, v := range r.PJ {
		t += v
	}
	return t
}

// MicroJoules returns the summed energy in microjoules (the unit the
// artifact tables display).
func (r Report) MicroJoules() float64 { return r.TotalPJ() * 1e-6 }

// Joules returns the summed energy in joules.
func (r Report) Joules() float64 { return r.TotalPJ() * 1e-12 }

// PowerWatts returns the average power over a modeled duration.
func (r Report) PowerWatts(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return r.Joules() / seconds
}

// EDP returns the energy-delay product in joule-seconds for a modeled
// duration — the efficiency goal GoalEDP ranks pathfinding candidates by.
func (r Report) EDP(seconds float64) float64 { return r.Joules() * seconds }

// EDPMicroJouleMS returns the energy-delay product in the display unit all
// the artifact tables and the EDP goal share (µJ·ms; 1 J·s = 1e9 µJ·ms).
// Having exactly one site derive the display unit keeps the Pareto goal,
// the breakdown tables and the CLI columns provably consistent.
func (r Report) EDPMicroJouleMS(seconds float64) float64 { return r.EDP(seconds) * 1e9 }

// Kernel computes one statistics record's event energy: every component
// except HostLink, which is a system-level quantity (see HostTransfer). The
// record may be a single DPU's or a rank aggregate; note that aggregates
// carry the max cycle count, so multi-DPU leakage should be summed per DPU
// (OfRun does).
//
// The computation is a pure linear function of the record's counters, so
// windowed deltas of the same execution sum exactly to the bulk report —
// the bulk ≡ stepwise property the energy tests pin down.
func Kernel(p *TechProfile, cfg config.Config, st *stats.DPU) Report {
	p = ResolveProfile(p)
	r := Report{Profile: p.Name}

	for c := 0; c < isa.NumClasses; c++ {
		r.PJ[Pipeline] += float64(st.Mix[c]) * p.PipelinePJ[classKeys[c]]
	}
	r.PJ[RegFile] = float64(st.RFReads)*p.RFReadPJ + float64(st.RFWrites)*p.RFWritePJ
	r.PJ[WRAM] = float64(st.WRAMReads)*p.WRAMReadPJ + float64(st.WRAMWrites)*p.WRAMWritePJ

	// Instruction fetches: one IRAM word per scalar issue, one per warp
	// issue under SIMT; in cache mode fetches go through the I-cache and are
	// charged to the cache arrays instead.
	switch cfg.Mode {
	case config.ModeCache:
	case config.ModeSIMT:
		r.PJ[IRAM] = float64(st.VectorIssues) * p.IRAMReadPJ
	default:
		r.PJ[IRAM] = float64(st.Instructions) * p.IRAMReadPJ
	}

	// MRAM<->WRAM link traffic: explicit DMA bytes under the scratchpad
	// model; cache fills under the cache model (writebacks post straight to
	// the bank); the SIMT vector unit reaches the bank through the coalescer
	// without crossing the link.
	switch cfg.Mode {
	case config.ModeScratchpad:
		r.PJ[Link] = float64(st.DMABytes) * p.LinkPJPerByte
	case config.ModeCache:
		r.PJ[Link] = float64(st.DRAM.BytesRead) * p.LinkPJPerByte
	}

	// DRAM bank events. Precharges happen on row conflicts (precharge +
	// activate) and refreshes (all-bank precharge).
	d := &st.DRAM
	r.PJ[DRAM] = float64(d.Activations())*p.DRAMActivatePJ +
		float64(d.RowMisses+d.Refreshes)*p.DRAMPrechargePJ +
		float64(d.BytesRead)*p.DRAMReadPJPerByte +
		float64(d.BytesWritten)*p.DRAMWritePJPerByte +
		float64(d.Refreshes)*p.DRAMRefreshPJ

	r.PJ[CacheArrays] = float64(st.ICache.Accesses)*p.ICacheAccessPJ +
		float64(st.DCache.Accesses)*p.DCacheAccessPJ

	// Static leakage over this record's cycles: 1 mW·s = 1e9 pJ.
	r.PJ[Leakage] = p.LeakageMW * 1e9 * cfg.CyclesToSeconds(st.Cycles)
	return r
}

// HostTransfer computes the CPU<->DPU channel energy of a run's transfer
// volumes (host.Report.BytesIn/BytesOut).
func HostTransfer(p *TechProfile, bytesIn, bytesOut uint64) Report {
	p = ResolveProfile(p)
	r := Report{Profile: p.Name}
	r.PJ[HostLink] = float64(bytesIn+bytesOut) * p.HostLinkPJPerByte
	return r
}

// OfRun computes a whole run's energy: per-DPU kernel event energy summed
// over the rank (so each DPU's leakage integrates its own cycles) plus the
// host channel transfers.
func OfRun(p *TechProfile, cfg config.Config, perDPU []stats.DPU, bytesIn, bytesOut uint64) Report {
	p = ResolveProfile(p)
	r := HostTransfer(p, bytesIn, bytesOut)
	for i := range perDPU {
		r = r.Add(Kernel(p, cfg, &perDPU[i]))
	}
	return r
}

// Delta returns the energy-relevant counter difference after - before: a
// record whose Kernel energy is the energy spent between the two snapshots
// of the same DPU. Only the counters the model reads are populated.
func Delta(after, before *stats.DPU) stats.DPU {
	var d stats.DPU
	d.Cycles = after.Cycles - before.Cycles
	d.Instructions = after.Instructions - before.Instructions
	d.VectorIssues = after.VectorIssues - before.VectorIssues
	for c := range d.Mix {
		d.Mix[c] = after.Mix[c] - before.Mix[c]
	}
	d.RFReads = after.RFReads - before.RFReads
	d.RFWrites = after.RFWrites - before.RFWrites
	d.WRAMReads = after.WRAMReads - before.WRAMReads
	d.WRAMWrites = after.WRAMWrites - before.WRAMWrites
	d.DMABytes = after.DMABytes - before.DMABytes
	d.DRAM.BytesRead = after.DRAM.BytesRead - before.DRAM.BytesRead
	d.DRAM.BytesWritten = after.DRAM.BytesWritten - before.DRAM.BytesWritten
	d.DRAM.RowHits = after.DRAM.RowHits - before.DRAM.RowHits
	d.DRAM.RowMisses = after.DRAM.RowMisses - before.DRAM.RowMisses
	d.DRAM.RowEmpty = after.DRAM.RowEmpty - before.DRAM.RowEmpty
	d.DRAM.Refreshes = after.DRAM.Refreshes - before.DRAM.Refreshes
	d.ICache.Accesses = after.ICache.Accesses - before.ICache.Accesses
	d.DCache.Accesses = after.DCache.Accesses - before.DCache.Accesses
	return d
}

// val renders an energy-table number: compact %.4g display over the exact
// value, stable across magnitudes from nanojoule components to joule totals.
func val(v float64) artifact.Value {
	return artifact.Raw(fmt.Sprintf("%.4g", v), v)
}

// BreakdownColumns returns the standard energy-table columns: one per
// component plus total (all µJ), average power (mW) and EDP (µJ·ms). Every
// energy artifact in the repo — the figures "energy" experiment, the
// explorer's energy table, cmd/prim -energy — shares this shape.
func BreakdownColumns() []artifact.Column {
	var cols []artifact.Column
	for _, c := range Components() {
		cols = append(cols, artifact.Column{Name: c.String(), Unit: "uJ"})
	}
	return append(cols,
		artifact.Column{Name: "total", Unit: "uJ"},
		artifact.Column{Name: "power", Unit: "mW"},
		artifact.Column{Name: "EDP", Unit: "uJ*ms"},
	)
}

// BreakdownRow renders one report against BreakdownColumns. totalSeconds is
// the modeled duration power and EDP derive from (a run's end-to-end time).
func BreakdownRow(r Report, totalSeconds float64) []artifact.Value {
	var row []artifact.Value
	for _, c := range Components() {
		row = append(row, val(r.PJ[c]*1e-6))
	}
	return append(row,
		val(r.MicroJoules()),
		val(r.PowerWatts(totalSeconds)*1e3),
		val(r.EDPMicroJouleMS(totalSeconds)),
	)
}
