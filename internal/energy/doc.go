// Package energy is the event-level energy and power model — the subsystem
// that turns the simulator's statistics record into the paper's second
// pathfinding axis. Nothing here advances simulated time: every joule is a
// deterministic, linear function of the event counters stats.DPU already
// accumulates (instruction mix, register-file and scratchpad accesses, DMA
// and link bytes, DRAM activates/bursts/refreshes, cache array lookups,
// host-channel bytes) plus static leakage integrated over the kernel's
// cycles, so energy inherits the simulator's determinism and the store's
// resume guarantees for free: a result loaded back from a pathfinding store
// yields bit-identical energy to the run that produced it.
//
// The per-event costs live in a TechProfile: a versioned, JSON-loadable
// parameter set with a committed default (profiles/default.json). Profiles
// loaded from disk override the default field-by-field, so a user profile
// only needs to name the parameters it changes — plus its own "name" (so
// reports never attribute custom calibrations to the committed profile)
// and "format" (so stale files fail loudly after a schema bump).
//
// Compute one report with Kernel (per-DPU event energy), HostTransfer (the
// CPU<->DPU channel) or OfRun (a whole verified run); Report breaks the
// total down per Component and derives average power and energy-delay
// product. BreakdownColumns/BreakdownRow render reports through the
// artifact pipeline, which is how the figures "energy" experiment, the
// explorer's energy tables and the CLIs all emit the same table shape.
package energy
