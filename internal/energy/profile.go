package energy

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"upim/internal/isa"
)

// ProfileFormat versions the TechProfile schema. Load rejects profiles
// declaring a different format, so a stale profile file fails loudly
// instead of silently zeroing new components.
const ProfileFormat = 1

// classKeys are the short, stable JSON keys profiles use for the per-class
// pipeline energies, aligned with isa.Class (the Fig 9 mix buckets).
var classKeys = [isa.NumClasses]string{
	"arith", "arith+branch", "mul/div", "ld/st", "dma", "sync", "etc",
}

// ClassKey returns the profile JSON key of an instruction-mix class.
func ClassKey(c isa.Class) string {
	if int(c) < len(classKeys) {
		return classKeys[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// TechProfile is the versioned per-event energy parameter set. All energies
// are picojoules per event (or per byte where named so); leakage is a static
// power in milliwatts integrated over each DPU's kernel cycles. The zero
// value is not meaningful — start from Default and override.
//
// The committed default (profiles/default.json) carries illustrative
// 2x-nm-DRAM-process magnitudes chosen for plausible relative weight between
// components, not vendor-measured values; calibrating against hardware
// power rails means committing a new named profile, not editing code.
type TechProfile struct {
	// Name identifies the profile in reports and artifact tables.
	Name string `json:"name"`
	// Format must equal ProfileFormat.
	Format int `json:"format"`

	// PipelinePJ is the per-issue pipeline energy by instruction-mix class,
	// keyed by ClassKey ("arith", "mul/div", ...). Under SIMT it is charged
	// per lane-instruction, matching how stats.DPU.Mix counts.
	PipelinePJ map[string]float64 `json:"pipeline_pj"`

	// Register file, per architectural GPR access (stats rf_reads/rf_writes).
	RFReadPJ  float64 `json:"rf_read_pj"`
	RFWritePJ float64 `json:"rf_write_pj"`

	// Scratchpads: WRAM per load/store access, IRAM per instruction fetch.
	WRAMReadPJ  float64 `json:"wram_read_pj"`
	WRAMWritePJ float64 `json:"wram_write_pj"`
	IRAMReadPJ  float64 `json:"iram_read_pj"`

	// LinkPJPerByte is the MRAM<->WRAM datapath energy per byte moved
	// (DMA traffic under the scratchpad model, cache fills under the cache
	// model).
	LinkPJPerByte float64 `json:"link_pj_per_byte"`

	// DRAM bank events: per row activate, per precharge, per byte
	// read/written at the sense amps, per refresh.
	DRAMActivatePJ     float64 `json:"dram_activate_pj"`
	DRAMPrechargePJ    float64 `json:"dram_precharge_pj"`
	DRAMReadPJPerByte  float64 `json:"dram_read_pj_per_byte"`
	DRAMWritePJPerByte float64 `json:"dram_write_pj_per_byte"`
	DRAMRefreshPJ      float64 `json:"dram_refresh_pj"`

	// Cache arrays, per tag/data lookup (stats icache/dcache_accesses).
	ICacheAccessPJ float64 `json:"icache_access_pj"`
	DCacheAccessPJ float64 `json:"dcache_access_pj"`

	// HostLinkPJPerByte is the CPU<->DPU channel energy per byte, applied to
	// host.Report.BytesIn + BytesOut.
	HostLinkPJPerByte float64 `json:"host_link_pj_per_byte"`

	// LeakageMW is the per-DPU static power in milliwatts, integrated over
	// each DPU's own kernel cycles at its configured frequency.
	LeakageMW float64 `json:"leakage_mw"`
}

//go:embed profiles/*.json
var profileFS embed.FS

var (
	embeddedMu       sync.Mutex
	embeddedProfiles = map[string]*TechProfile{}
)

// embedded parses (once) and returns the committed profile at path.
func embedded(path string) *TechProfile {
	embeddedMu.Lock()
	defer embeddedMu.Unlock()
	if p, ok := embeddedProfiles[path]; ok {
		return p
	}
	data, err := profileFS.ReadFile(path)
	if err != nil {
		panic("energy: embedded profile " + path + " missing: " + err.Error())
	}
	p := &TechProfile{PipelinePJ: map[string]float64{}}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		panic("energy: embedded profile " + path + " invalid: " + err.Error())
	}
	if err := p.Validate(); err != nil {
		panic("energy: embedded profile " + path + " invalid: " + err.Error())
	}
	embeddedProfiles[path] = p
	return p
}

// Default returns a copy of the committed default profile. Mutating the copy
// is safe; the embedded original is parsed once and never exposed.
func Default() *TechProfile {
	return embedded("profiles/default.json").clone()
}

// DefaultFor returns a copy of the committed default profile for an
// architecture backend: the UPMEM profile for "" or "upmem" (results
// predating multiple backends carry no architecture), the bank-level MAC
// profile for "hbm-pim", and the UPMEM default for anything unrecognized —
// an unknown architecture's energy is better priced under the committed
// baseline than dropped to zero.
func DefaultFor(arch string) *TechProfile {
	if arch == "hbm-pim" {
		return embedded("profiles/hbmpim.json").clone()
	}
	return Default()
}

// ResolveProfile resolves a nil profile to the committed default — the
// convention every energy entry point follows, so callers can plumb an
// optional *TechProfile straight through.
func ResolveProfile(p *TechProfile) *TechProfile {
	if p == nil {
		return Default()
	}
	return p
}

func (p *TechProfile) clone() *TechProfile {
	c := *p
	c.PipelinePJ = make(map[string]float64, len(p.PipelinePJ))
	for k, v := range p.PipelinePJ {
		c.PipelinePJ[k] = v
	}
	return &c
}

// Load reads a profile as a field-by-field override of the default: fields
// absent from the JSON keep their default values (including individual
// pipeline classes), so a user profile only names what it changes — except
// "name" and "format", which every override must declare itself. Reports
// attribute their numbers to Report.Profile, so inheriting the default's
// identity would mislabel custom calibrations as the committed profile; and
// inheriting the current format would let a stale profile file load
// silently under changed semantics after a ProfileFormat bump instead of
// failing loudly. Unknown fields and format mismatches are errors.
func Load(r io.Reader) (*TechProfile, error) {
	p := Default()
	p.Name = ""  // overrides must declare their own identity...
	p.Format = 0 // ...and the schema format they were written against
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("energy: decoding profile: %w", err)
	}
	// One JSON object per profile: silently dropping trailing content (say,
	// an accidental duplicate object after editing) would discard the very
	// calibration the user meant to apply.
	if dec.More() {
		return nil, fmt.Errorf("energy: profile has trailing content after the JSON object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadFile reads a profile override from a JSON file (see Load).
func LoadFile(path string) (*TechProfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		// Load's errors carry the "energy:" prefix already; just add the path.
		return nil, fmt.Errorf("%w (profile %s)", err, path)
	}
	return p, nil
}

// Validate checks internal consistency: the declared format, a non-empty
// name, known pipeline class keys, and non-negative energies.
func (p *TechProfile) Validate() error {
	if p.Format != ProfileFormat {
		return fmt.Errorf("energy: profile %q declares format %d, this simulator expects %d (profiles must declare \"format\" explicitly)",
			p.Name, p.Format, ProfileFormat)
	}
	if p.Name == "" {
		return fmt.Errorf("energy: profile needs a name (override profiles must declare their own identity)")
	}
	known := map[string]bool{}
	for _, k := range classKeys {
		known[k] = true
	}
	for k, v := range p.PipelinePJ {
		if !known[k] {
			return fmt.Errorf("energy: profile %q: unknown pipeline class %q (want one of %v)",
				p.Name, k, classKeys)
		}
		if v < 0 {
			return fmt.Errorf("energy: profile %q: pipeline class %q energy is negative", p.Name, k)
		}
	}
	for c := 0; c < isa.NumClasses; c++ {
		if _, ok := p.PipelinePJ[classKeys[c]]; !ok {
			return fmt.Errorf("energy: profile %q: missing pipeline class %q", p.Name, classKeys[c])
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"rf_read_pj", p.RFReadPJ}, {"rf_write_pj", p.RFWritePJ},
		{"wram_read_pj", p.WRAMReadPJ}, {"wram_write_pj", p.WRAMWritePJ},
		{"iram_read_pj", p.IRAMReadPJ}, {"link_pj_per_byte", p.LinkPJPerByte},
		{"dram_activate_pj", p.DRAMActivatePJ}, {"dram_precharge_pj", p.DRAMPrechargePJ},
		{"dram_read_pj_per_byte", p.DRAMReadPJPerByte}, {"dram_write_pj_per_byte", p.DRAMWritePJPerByte},
		{"dram_refresh_pj", p.DRAMRefreshPJ},
		{"icache_access_pj", p.ICacheAccessPJ}, {"dcache_access_pj", p.DCacheAccessPJ},
		{"host_link_pj_per_byte", p.HostLinkPJPerByte}, {"leakage_mw", p.LeakageMW},
	} {
		if f.v < 0 {
			return fmt.Errorf("energy: profile %q: %s is negative", p.Name, f.name)
		}
	}
	return nil
}
