package host

import (
	"context"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"upim/internal/config"
	"upim/internal/kbuild"
	"upim/internal/linker"
)

// dpuidKernel stores DPUID+arg0 into MRAM[arg1] (one word), exercising both
// args and per-DPU identity.
func dpuidKernel() *linker.Object {
	b := kbuild.New("dpuid")
	r0, r1, r2 := kbuild.R(0), kbuild.R(1), kbuild.R(2)
	buf := b.Static("stage", 8, 8)
	b.LoadArg(r0, 0)
	b.Add(r0, r0, kbuild.DPUID)
	b.MoviSym(r1, buf, 0)
	b.Sw(r0, r1, 0)
	b.LoadArg(r2, 1)
	b.Sdmai(r1, r2, 8)
	b.Stop()
	return b.MustBuild()
}

func newTestSystem(t *testing.T, n int) *System {
	t.Helper()
	cfg := config.Default()
	cfg.NumTasklets = 1
	s, err := NewSystem(dpuidKernel(), cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMultiDPULaunch(t *testing.T) {
	const n = 8
	s := newTestSystem(t, n)
	for i := 0; i < n; i++ {
		if err := s.WriteArgs(i, 1000, MRAMBaseAddr(4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.SetPhase(PhaseOutput)
	for i := 0; i < n; i++ {
		out, err := s.ReadMRAM(i, 4096, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint32(out); got != uint32(1000+i) {
			t.Errorf("dpu %d result = %d, want %d", i, got, 1000+i)
		}
	}
	rep := s.Report()
	if rep.Launches != 1 || rep.KernelSeconds <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestTransferTimeModel(t *testing.T) {
	s := newTestSystem(t, 4)
	cfg := s.Config()
	payload := make([]byte, 1<<20)
	// Same-size transfers to all DPUs proceed in parallel: one transfer's
	// time, not four.
	for i := 0; i < 4; i++ {
		if err := s.CopyToMRAM(i, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.Report()
	want := float64(len(payload)) / cfg.CPUToDPUBytesPerSec
	if math.Abs(rep.PhaseSeconds(PhaseInput)-want) > want*1e-9 {
		t.Fatalf("input seconds = %g, want %g", rep.PhaseSeconds(PhaseInput), want)
	}

	// Reads are charged at the (slower) DPU->CPU bandwidth.
	s.SetPhase(PhaseOutput)
	if _, err := s.ReadMRAM(0, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	rep = s.Report()
	wantOut := float64(1<<20) / cfg.DPUToCPUBytesPerSec
	if math.Abs(rep.PhaseSeconds(PhaseOutput)-wantOut) > wantOut*1e-9 {
		t.Fatalf("output seconds = %g, want %g", rep.PhaseSeconds(PhaseOutput), wantOut)
	}
	if wantOut <= want {
		t.Fatal("asymmetry lost: reads must be slower than writes")
	}
}

func TestExchangePhaseBucketsBothDirections(t *testing.T) {
	s := newTestSystem(t, 2)
	s.SetPhase(PhaseExchange)
	if _, err := s.ReadMRAM(0, 0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.CopyToMRAM(1, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	cfg := s.Config()
	want := 4096/cfg.DPUToCPUBytesPerSec + 4096/cfg.CPUToDPUBytesPerSec
	if math.Abs(rep.PhaseSeconds(PhaseExchange)-want) > want*1e-9 {
		t.Fatalf("exchange seconds = %g, want %g", rep.PhaseSeconds(PhaseExchange), want)
	}
	if rep.PhaseSeconds(PhaseInput) != 0 || rep.PhaseSeconds(PhaseOutput) != 0 {
		t.Fatal("exchange leaked into other phases")
	}
}

func TestRelaunchAccumulates(t *testing.T) {
	s := newTestSystem(t, 2)
	for i := 0; i < 2; i++ {
		if err := s.WriteArgs(i, 5, MRAMBaseAddr(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	k1 := s.Report().KernelSeconds
	// Second launch with new args; memories persist, threads restart.
	s.SetPhase(PhaseExchange)
	for i := 0; i < 2; i++ {
		if err := s.WriteArgs(i, 7, MRAMBaseAddr(8192)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Launches != 2 {
		t.Fatalf("launches = %d", rep.Launches)
	}
	if rep.KernelSeconds <= k1 {
		t.Fatal("second launch added no kernel time")
	}
	out, err := s.ReadMRAM(1, 8192, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(out); got != 8 {
		t.Fatalf("post-relaunch result = %d, want 8", got)
	}
}

func TestLaunchPropagatesFaults(t *testing.T) {
	b := kbuild.New("faulty")
	b.Fault(kbuild.R(0), 1)
	b.Stop()
	cfg := config.Default()
	cfg.NumTasklets = 1
	s, err := NewSystem(b.MustBuild(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(context.Background()); err == nil || !strings.Contains(err.Error(), "software fault") {
		t.Fatalf("err = %v, want fault propagation", err)
	}
}

func TestArgsValidation(t *testing.T) {
	s := newTestSystem(t, 1)
	long := make([]uint32, linker.ArgWords+1)
	if err := s.WriteArgs(0, long...); err == nil {
		t.Fatal("oversized args accepted")
	}
}

func TestAggregateStats(t *testing.T) {
	s := newTestSystem(t, 4)
	for i := 0; i < 4; i++ {
		if err := s.WriteArgs(i, 1, MRAMBaseAddr(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	agg := s.AggregateStats()
	one := s.DPU(0).Stats().Instructions
	if agg.Instructions != 4*one {
		t.Fatalf("aggregate instructions = %d, want %d", agg.Instructions, 4*one)
	}
}
