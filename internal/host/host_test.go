package host

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"upim/internal/config"
	"upim/internal/kbuild"
	"upim/internal/linker"
)

// dpuidKernel stores DPUID+arg0 into MRAM[arg1] (one word), exercising both
// args and per-DPU identity.
func dpuidKernel() *linker.Object {
	b := kbuild.New("dpuid")
	r0, r1, r2 := kbuild.R(0), kbuild.R(1), kbuild.R(2)
	buf := b.Static("stage", 8, 8)
	b.LoadArg(r0, 0)
	b.Add(r0, r0, kbuild.DPUID)
	b.MoviSym(r1, buf, 0)
	b.Sw(r0, r1, 0)
	b.LoadArg(r2, 1)
	b.Sdmai(r1, r2, 8)
	b.Stop()
	return b.MustBuild()
}

func newTestSystem(t *testing.T, n int) *System {
	t.Helper()
	cfg := config.Default()
	cfg.NumTasklets = 1
	s, err := NewSystem(dpuidKernel(), cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMultiDPULaunch(t *testing.T) {
	const n = 8
	s := newTestSystem(t, n)
	for i := 0; i < n; i++ {
		if err := s.WriteArgs(i, 1000, MRAMBaseAddr(4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.SetPhase(PhaseOutput)
	for i := 0; i < n; i++ {
		out, err := s.ReadMRAM(i, 4096, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint32(out); got != uint32(1000+i) {
			t.Errorf("dpu %d result = %d, want %d", i, got, 1000+i)
		}
	}
	rep := s.Report()
	if rep.Launches != 1 || rep.KernelSeconds <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestTransferTimeModel(t *testing.T) {
	s := newTestSystem(t, 4)
	cfg := s.Config()
	payload := make([]byte, 1<<20)
	// Same-size transfers to all DPUs proceed in parallel: one transfer's
	// time, not four.
	for i := 0; i < 4; i++ {
		if err := s.CopyToMRAM(i, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.Report()
	want := float64(len(payload)) / cfg.CPUToDPUBytesPerSec
	if math.Abs(rep.PhaseSeconds(PhaseInput)-want) > want*1e-9 {
		t.Fatalf("input seconds = %g, want %g", rep.PhaseSeconds(PhaseInput), want)
	}

	// Reads are charged at the (slower) DPU->CPU bandwidth.
	s.SetPhase(PhaseOutput)
	if _, err := s.ReadMRAM(0, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	rep = s.Report()
	wantOut := float64(1<<20) / cfg.DPUToCPUBytesPerSec
	if math.Abs(rep.PhaseSeconds(PhaseOutput)-wantOut) > wantOut*1e-9 {
		t.Fatalf("output seconds = %g, want %g", rep.PhaseSeconds(PhaseOutput), wantOut)
	}
	if wantOut <= want {
		t.Fatal("asymmetry lost: reads must be slower than writes")
	}
}

func TestExchangePhaseBucketsBothDirections(t *testing.T) {
	s := newTestSystem(t, 2)
	s.SetPhase(PhaseExchange)
	if _, err := s.ReadMRAM(0, 0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.CopyToMRAM(1, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	cfg := s.Config()
	want := 4096/cfg.DPUToCPUBytesPerSec + 4096/cfg.CPUToDPUBytesPerSec
	if math.Abs(rep.PhaseSeconds(PhaseExchange)-want) > want*1e-9 {
		t.Fatalf("exchange seconds = %g, want %g", rep.PhaseSeconds(PhaseExchange), want)
	}
	if rep.PhaseSeconds(PhaseInput) != 0 || rep.PhaseSeconds(PhaseOutput) != 0 {
		t.Fatal("exchange leaked into other phases")
	}
}

func TestRelaunchAccumulates(t *testing.T) {
	s := newTestSystem(t, 2)
	for i := 0; i < 2; i++ {
		if err := s.WriteArgs(i, 5, MRAMBaseAddr(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	k1 := s.Report().KernelSeconds
	// Second launch with new args; memories persist, threads restart.
	s.SetPhase(PhaseExchange)
	for i := 0; i < 2; i++ {
		if err := s.WriteArgs(i, 7, MRAMBaseAddr(8192)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Launches != 2 {
		t.Fatalf("launches = %d", rep.Launches)
	}
	if rep.KernelSeconds <= k1 {
		t.Fatal("second launch added no kernel time")
	}
	out, err := s.ReadMRAM(1, 8192, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(out); got != 8 {
		t.Fatalf("post-relaunch result = %d, want 8", got)
	}
}

func TestLaunchPropagatesFaults(t *testing.T) {
	b := kbuild.New("faulty")
	b.Fault(kbuild.R(0), 1)
	b.Stop()
	cfg := config.Default()
	cfg.NumTasklets = 1
	s, err := NewSystem(b.MustBuild(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(context.Background()); err == nil || !strings.Contains(err.Error(), "software fault") {
		t.Fatalf("err = %v, want fault propagation", err)
	}
}

func TestArgsValidation(t *testing.T) {
	s := newTestSystem(t, 1)
	long := make([]uint32, linker.ArgWords+1)
	if err := s.WriteArgs(0, long...); err == nil {
		t.Fatal("oversized args accepted")
	}
}

func TestAggregateStats(t *testing.T) {
	s := newTestSystem(t, 4)
	for i := 0; i < 4; i++ {
		if err := s.WriteArgs(i, 1, MRAMBaseAddr(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	agg := s.AggregateStats()
	one := s.DPU(0).Stats().Instructions
	if agg.Instructions != 4*one {
		t.Fatalf("aggregate instructions = %d, want %d", agg.Instructions, 4*one)
	}
}

// must is a tiny helper for transfer-script steps.
func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestTransferAccountingSequences drives multi-window transfer scripts —
// distribution, exchange rounds between launches, retrieval — and asserts
// every Report.TransferSeconds bucket against the model: within one flush
// window transfers to distinct DPUs overlap (per-direction max), transfers
// to the same DPU serialize, and SetPhase/Launch/Report close the window.
func TestTransferAccountingSequences(t *testing.T) {
	cfg := config.Default()
	bwIn, bwOut := cfg.CPUToDPUBytesPerSec, cfg.DPUToCPUBytesPerSec
	const MB = 1 << 20
	sec := func(inBytes, outBytes float64) float64 { return inBytes/bwIn + outBytes/bwOut }

	cases := []struct {
		name     string
		dpus     int
		script   func(t *testing.T, s *System)
		want     [3]float64 // indexed by PhaseInput, PhaseOutput, PhaseExchange
		launches int
	}{
		{
			name: "parallel distribution then single retrieval",
			dpus: 4,
			script: func(t *testing.T, s *System) {
				payload := make([]byte, MB)
				for i := 0; i < 4; i++ {
					must(t, s.CopyToMRAM(i, 0, payload))
				}
				s.SetPhase(PhaseOutput)
				_, err := s.ReadMRAM(0, 0, 2*MB)
				must(t, err)
			},
			want: [3]float64{PhaseInput: sec(MB, 0), PhaseOutput: sec(0, 2*MB)},
		},
		{
			name: "same-DPU transfers serialize within a window",
			dpus: 2,
			script: func(t *testing.T, s *System) {
				payload := make([]byte, MB)
				must(t, s.CopyToMRAM(0, 0, payload))
				must(t, s.CopyToMRAM(0, MB, payload)) // same DPU: accumulates
				must(t, s.CopyToMRAM(1, 0, payload))  // other DPU: overlapped
				s.SetPhase(PhaseExchange)             // closes the window
				must(t, s.CopyToMRAM(0, 0, payload))  // fresh window
			},
			want: [3]float64{PhaseInput: sec(2*MB, 0), PhaseExchange: sec(MB, 0)},
		},
		{
			name: "bidirectional exchange window",
			dpus: 2,
			script: func(t *testing.T, s *System) {
				s.SetPhase(PhaseExchange)
				_, err := s.ReadMRAM(0, 0, 4096)
				must(t, err)
				must(t, s.CopyToMRAM(1, 0, make([]byte, 4096)))
			},
			want: [3]float64{PhaseExchange: sec(4096, 4096)},
		},
		{
			name: "multi-launch with an exchange round",
			dpus: 2,
			script: func(t *testing.T, s *System) {
				// Args are 2 words = 8 bytes of CPU->DPU traffic per DPU.
				must(t, s.WriteArgs(0, 1000, MRAMBaseAddr(4096)))
				must(t, s.WriteArgs(1, 1000, MRAMBaseAddr(4096)))
				must(t, s.CopyToMRAM(0, 0, make([]byte, MB)))
				must(t, s.Launch(context.Background())) // flushes input: max(MB+8, 8)
				s.SetPhase(PhaseExchange)
				_, err := s.ReadMRAM(0, 4096, 4096)
				must(t, err)
				must(t, s.WriteArgs(0, 2000, MRAMBaseAddr(8192)))
				must(t, s.WriteArgs(1, 2000, MRAMBaseAddr(8192)))
				must(t, s.CopyToMRAM(1, 0, make([]byte, 4096)))
				must(t, s.Launch(context.Background())) // flushes exchange: in max(8, 4096+8), out 4096
				s.SetPhase(PhaseOutput)
				_, err = s.ReadMRAM(1, 8192, MB)
				must(t, err)
			},
			want: [3]float64{
				PhaseInput:    sec(MB+8, 0),
				PhaseExchange: sec(4096+8, 4096),
				PhaseOutput:   sec(0, MB),
			},
			launches: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestSystem(t, tc.dpus)
			tc.script(t, s)
			rep := s.Report()
			for p := PhaseInput; p < numPhases; p++ {
				got, want := rep.PhaseSeconds(p), tc.want[p]
				if math.Abs(got-want) > want*1e-9 {
					t.Errorf("%v seconds = %g, want %g", p, got, want)
				}
			}
			if rep.Launches != tc.launches {
				t.Errorf("launches = %d, want %d", rep.Launches, tc.launches)
			}
		})
	}
}

func TestLaunchErrorSelection(t *testing.T) {
	fault := errors.New("software fault 1")
	// A real worker failure wins over a simultaneous cancellation and names
	// its DPU.
	err := launchError(7, context.Canceled, []error{context.Canceled, fault, context.Canceled})
	if !errors.Is(err, fault) {
		t.Fatalf("err = %v, want the worker fault", err)
	}
	if !strings.Contains(err.Error(), "dpu 1") || !strings.Contains(err.Error(), "launch 7") {
		t.Fatalf("err = %v, want dpu index and launch number", err)
	}
	// Pure cancellation reports the context error without a bogus DPU index.
	err = launchError(3, context.Canceled, []error{context.Canceled, nil})
	if !errors.Is(err, context.Canceled) || strings.Contains(err.Error(), "dpu") {
		t.Fatalf("err = %v, want plain cancellation", err)
	}
	// An uncancelled failing launch still names the failing DPU.
	err = launchError(0, nil, []error{nil, nil, fault})
	if !errors.Is(err, fault) || !strings.Contains(err.Error(), "dpu 2") {
		t.Fatalf("err = %v, want dpu 2 fault", err)
	}
	if err := launchError(0, nil, make([]error, 3)); err != nil {
		t.Fatalf("clean launch errored: %v", err)
	}
}

func TestLaunchWrapsFailingDPUIndex(t *testing.T) {
	// Only DPU 2 faults; the launch error must name it.
	b := kbuild.New("fault-one")
	r0 := kbuild.R(0)
	b.Mov(r0, kbuild.DPUID)
	b.Jnei(r0, 2, "ok")
	b.Fault(r0, 1)
	b.Label("ok")
	b.Stop()
	cfg := config.Default()
	cfg.NumTasklets = 1
	s, err := NewSystem(b.MustBuild(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Launch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "dpu 2") || !strings.Contains(err.Error(), "software fault") {
		t.Fatalf("err = %v, want a dpu-2 software fault", err)
	}
}

// TestLaunchBatchedErrorGlobalIndex pins error attribution under
// contiguous-range batching: with far more DPUs than workers, each worker
// owns a multi-DPU batch, and a failure deep inside a later batch must be
// reported by its global DPU index, not its offset within the batch (a
// batch-local bug would report "dpu 29" here, not "dpu 61").
func TestLaunchBatchedErrorGlobalIndex(t *testing.T) {
	prev := runtime.GOMAXPROCS(2) // exactly 2 workers -> two 32-DPU batches
	defer runtime.GOMAXPROCS(prev)

	const n, failing = 64, 61
	b := kbuild.New("fault-global")
	r0 := kbuild.R(0)
	b.Mov(r0, kbuild.DPUID)
	b.Jnei(r0, failing, "ok")
	b.Fault(r0, 1)
	b.Label("ok")
	b.Stop()
	cfg := config.Default()
	cfg.NumTasklets = 1
	s, err := NewSystem(b.MustBuild(), cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Launch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "dpu 61") || !strings.Contains(err.Error(), "software fault") {
		t.Fatalf("err = %v, want a dpu-61 software fault (global index, not batch offset)", err)
	}
}

func TestLaunchCancelledBeforeStart(t *testing.T) {
	s := newTestSystem(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Launch(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Report().Launches != 0 {
		t.Fatal("cancelled launch was counted")
	}
}
