// Package host models the CPU side of an UPMEM-PIM system: DPU allocation,
// binary/data distribution over the fixed-bandwidth asymmetric CPU<->DPU
// channel (Table I: 0.296 GB/s down, 0.063 GB/s up, per DPU), kernel
// launches, and the phase-bucketed time accounting behind the paper's
// multi-DPU strong-scaling study (Fig 10: Kernel / CPU-to-DPU / DPU-to-CPU /
// DPU-to-DPU).
//
// DPUs execute independently between launches, so the system runs them on a
// goroutine pool — the multithreaded-simulation future work of Section III-D.
package host

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"upim/internal/config"
	"upim/internal/core"
	"upim/internal/linker"
	"upim/internal/mem"
	"upim/internal/stats"
)

// Phase buckets transfer and execution time like Fig 10.
type Phase int

const (
	// PhaseInput is initial CPU->DPU data distribution.
	PhaseInput Phase = iota
	// PhaseOutput is final DPU->CPU result retrieval.
	PhaseOutput
	// PhaseExchange is inter-kernel DPU->CPU->DPU communication (the
	// "DPU-to-DPU" bar: DPUs can only share data through the host).
	PhaseExchange
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseInput:
		return "CPU-to-DPU"
	case PhaseOutput:
		return "DPU-to-CPU"
	case PhaseExchange:
		return "DPU-to-DPU"
	default:
		return fmt.Sprintf("phase?%d", int(p))
	}
}

// Report accumulates a run's wall-clock model.
type Report struct {
	KernelSeconds   float64
	TransferSeconds [numPhases]float64
	Launches        int
	// BytesIn/BytesOut are total transfer volumes (all phases).
	BytesIn, BytesOut uint64
}

// Total returns modeled end-to-end seconds.
func (r *Report) Total() float64 {
	t := r.KernelSeconds
	for _, s := range r.TransferSeconds {
		t += s
	}
	return t
}

// PhaseSeconds returns one transfer bucket.
func (r *Report) PhaseSeconds(p Phase) float64 { return r.TransferSeconds[p] }

// System is a host plus a set of DPUs running one linked program.
type System struct {
	cfg  config.Config
	prog *linker.Program
	dpus []*core.DPU

	phase Phase
	// pending per-DPU transfer bytes since the last flush.
	pendIn, pendOut []uint64

	report      Report
	maxKernelCy uint64 // per-launch watchdog

	// Launch scratch, reused across launches so steady-state launches do not
	// allocate.
	before []uint64
	errs   []error
}

// NewSystem links obj for cfg and allocates n DPUs loaded with the program.
func NewSystem(obj *linker.Object, cfg config.Config, n int) (*System, error) {
	if obj == nil {
		return nil, fmt.Errorf("host: nil object (assemble or build a kernel first)")
	}
	prog, err := linker.Link(obj, cfg)
	if err != nil {
		return nil, err
	}
	return NewSystemFromProgram(prog, cfg, n)
}

// NewSystemFromProgram allocates n DPUs loaded with an already-linked
// program. The program must have been linked for the same mode as cfg; it is
// never mutated, so one Program may back many concurrent Systems (the sweep
// engine's build cache relies on this).
func NewSystemFromProgram(prog *linker.Program, cfg config.Config, n int) (*System, error) {
	return NewSystemFromProgramInArena(prog, cfg, n, nil)
}

// NewSystemFromProgramInArena is NewSystemFromProgram drawing the DPUs from
// an arena (nil degrades to plain allocation). The caller must Release the
// system once it has copied every result out; see the arena's ownership
// rules.
func NewSystemFromProgramInArena(prog *linker.Program, cfg config.Config, n int, arena *core.Arena) (*System, error) {
	if prog == nil {
		return nil, fmt.Errorf("host: nil program (link an object first)")
	}
	if n <= 0 {
		return nil, fmt.Errorf("host: need at least one DPU")
	}
	s := &System{
		cfg:         cfg,
		prog:        prog,
		dpus:        make([]*core.DPU, n),
		pendIn:      make([]uint64, n),
		pendOut:     make([]uint64, n),
		phase:       PhaseInput,
		maxKernelCy: 2_000_000_000,
	}
	for i := 0; i < n; i++ {
		d, err := core.NewInArena(arena, i, prog, cfg)
		if err != nil {
			s.Release()
			return nil, err
		}
		s.dpus[i] = d
	}
	return s, nil
}

// Release returns every DPU to its arena (a no-op for plainly-allocated
// systems). The system and any views into its DPUs must not be used
// afterwards; results must be copied out first. Release is idempotent.
func (s *System) Release() {
	for i, d := range s.dpus {
		if d != nil {
			d.Release()
			s.dpus[i] = nil
		}
	}
}

// NumDPUs returns the allocation size.
func (s *System) NumDPUs() int { return len(s.dpus) }

// Config returns the per-DPU configuration.
func (s *System) Config() config.Config { return s.cfg }

// Program returns the linked program (symbol lookups for hosts/tests).
func (s *System) Program() *linker.Program { return s.prog }

// DPU exposes one DPU (tests and advanced hosts).
func (s *System) DPU(i int) *core.DPU { return s.dpus[i] }

// SetWatchdog bounds each launch's per-DPU cycles.
func (s *System) SetWatchdog(cycles uint64) { s.maxKernelCy = cycles }

// SetPhase flushes pending transfers and switches the accounting bucket.
func (s *System) SetPhase(p Phase) {
	s.flushTransfers()
	s.phase = p
}

// flushTransfers converts accumulated per-DPU bytes into elapsed time:
// transfers to distinct DPUs proceed in parallel, each at the per-DPU
// channel bandwidth, so a burst of transfers costs the per-direction maximum.
func (s *System) flushTransfers() {
	var maxIn, maxOut uint64
	for i := range s.pendIn {
		maxIn = max(maxIn, s.pendIn[i])
		maxOut = max(maxOut, s.pendOut[i])
		s.pendIn[i], s.pendOut[i] = 0, 0
	}
	if maxIn == 0 && maxOut == 0 {
		return
	}
	sec := float64(maxIn)/s.cfg.CPUToDPUBytesPerSec + float64(maxOut)/s.cfg.DPUToCPUBytesPerSec
	s.report.TransferSeconds[s.phase] += sec
}

// CopyToMRAM writes data into a DPU's MRAM at a bank offset, charging the
// CPU->DPU channel (and prefaulting MMU pages, as the paper's measurement
// scenario assumes).
func (s *System) CopyToMRAM(dpu int, off uint32, data []byte) error {
	d := s.dpus[dpu]
	if err := d.MRAM().WriteBytes(off, data); err != nil {
		return err
	}
	if m := d.MMU(); m != nil {
		m.MapRange(off, len(data))
	}
	s.pendIn[dpu] += uint64(len(data))
	s.report.BytesIn += uint64(len(data))
	return nil
}

// CopyToWRAM writes data into a DPU's WRAM.
func (s *System) CopyToWRAM(dpu int, addr uint32, data []byte) error {
	if err := s.dpus[dpu].WRAM().WriteBytes(addr, data); err != nil {
		return err
	}
	s.pendIn[dpu] += uint64(len(data))
	s.report.BytesIn += uint64(len(data))
	return nil
}

// WriteArgs writes the 16-word launch argument block.
func (s *System) WriteArgs(dpu int, args ...uint32) error {
	if len(args) > linker.ArgWords {
		return fmt.Errorf("host: %d args exceed the %d-word block", len(args), linker.ArgWords)
	}
	buf := make([]byte, 4*len(args))
	for i, a := range args {
		binary.LittleEndian.PutUint32(buf[4*i:], a)
	}
	return s.CopyToWRAM(dpu, 0, buf)
}

// ReadMRAM retrieves data from a DPU's MRAM, charging the DPU->CPU channel.
func (s *System) ReadMRAM(dpu int, off uint32, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := s.ReadMRAMInto(dpu, off, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadMRAMInto fills buf from a DPU's MRAM starting at off. It is the
// allocation-free variant of ReadMRAM for hot verification loops that
// reuse one scratch buffer across DPUs.
func (s *System) ReadMRAMInto(dpu int, off uint32, buf []byte) error {
	if err := s.dpus[dpu].MRAM().ReadBytes(off, buf); err != nil {
		return err
	}
	s.pendOut[dpu] += uint64(len(buf))
	s.report.BytesOut += uint64(len(buf))
	return nil
}

// ReadWRAM retrieves data from a DPU's WRAM.
func (s *System) ReadWRAM(dpu int, addr uint32, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := s.dpus[dpu].WRAM().ReadBytes(addr, buf); err != nil {
		return nil, err
	}
	s.pendOut[dpu] += uint64(n)
	s.report.BytesOut += uint64(n)
	return buf, nil
}

// MRAMBaseAddr converts a bank offset into the absolute address kernels use.
func MRAMBaseAddr(off uint32) uint32 { return mem.MRAMBase + off }

// Launch flushes pending transfers and runs every DPU's kernel to
// completion in parallel; kernel time advances by the slowest DPU.
// Cancelling ctx aborts the launch: running DPUs return promptly and Launch
// reports ctx.Err().
func (s *System) Launch(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.flushTransfers()
	n := len(s.dpus)
	if cap(s.before) < n {
		s.before = make([]uint64, n)
		s.errs = make([]error, n)
	}
	before, errs := s.before[:n], s.errs[:n]
	for i, d := range s.dpus {
		before[i] = d.Cycles()
		errs[i] = nil
		if s.report.Launches > 0 {
			d.Relaunch()
		}
	}

	// DPUs are independent between launches, so each worker takes one
	// contiguous batch of DPUs instead of pulling single indices off a
	// channel: no per-DPU channel handshake, and a single-DPU (or
	// single-worker) launch runs inline on this goroutine.
	workers := min(n, runtime.GOMAXPROCS(0))
	if workers <= 1 {
		for i, d := range s.dpus {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = d.Run(ctx, s.maxKernelCy)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*n/workers, (w+1)*n/workers
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if err := ctx.Err(); err != nil {
						errs[i] = err
						continue
					}
					errs[i] = s.dpus[i].Run(ctx, s.maxKernelCy)
				}
			}()
		}
		wg.Wait()
	}

	if err := launchError(s.report.Launches, ctx.Err(), errs); err != nil {
		return err
	}
	var maxCycles uint64
	for i, d := range s.dpus {
		maxCycles = max(maxCycles, d.Cycles()-before[i])
	}
	s.report.KernelSeconds += s.cfg.CyclesToSeconds(maxCycles)
	s.report.Launches++
	return nil
}

// launchError selects the error a finished launch reports. Real worker
// failures (faults, watchdog expiries) win over plain cancellation — a DPU
// fault that races a context cancellation must not be masked by it — and
// are wrapped with the failing DPU's index for debuggability. Cancellation
// is reported only when no worker failed for a more specific reason.
func launchError(launch int, ctxErr error, errs []error) error {
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("host: launch %d: dpu %d: %w", launch, i, err)
		}
	}
	if ctxErr != nil {
		return fmt.Errorf("host: launch %d: %w", launch, ctxErr)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("host: launch %d: dpu %d: %w", launch, i, err)
		}
	}
	return nil
}

// Report flushes pending transfers and returns the accumulated timing model.
func (s *System) Report() Report {
	s.flushTransfers()
	return s.report
}

// AggregateStats sums the per-DPU statistics (Cycles becomes the max).
func (s *System) AggregateStats() stats.DPU {
	var agg stats.DPU
	for _, d := range s.dpus {
		agg.Add(d.Stats())
	}
	return agg
}
