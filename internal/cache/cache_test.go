package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"upim/internal/config"
	"upim/internal/stats"
)

// fakeBackend records fill/writeback traffic and serves fills after a fixed
// latency.
type fakeBackend struct {
	fillLatency Tick
	fills       []uint32
	writebacks  []uint32
}

func (f *fakeBackend) Fill(lineAddr uint32, lineBytes int, now Tick) Tick {
	f.fills = append(f.fills, lineAddr)
	return now + f.fillLatency
}

func (f *fakeBackend) Writeback(lineAddr uint32, lineBytes int, now Tick) Tick {
	f.writebacks = append(f.writebacks, lineAddr)
	return now
}

func newCache(t *testing.T, mutate func(*config.CacheConfig)) (*Cache, *fakeBackend, *stats.Cache) {
	t.Helper()
	cfg := config.Default().DCache
	if mutate != nil {
		mutate(&cfg)
	}
	be := &fakeBackend{fillLatency: 100}
	st := &stats.Cache{}
	c, err := New(cfg, be, st)
	if err != nil {
		t.Fatal(err)
	}
	return c, be, st
}

func TestMissThenHit(t *testing.T) {
	c, be, st := newCache(t, nil)
	if ready := c.Access(0x100, false, 10); ready != 110 {
		t.Fatalf("miss ready = %d, want 110", ready)
	}
	if ready := c.Access(0x104, false, 200); ready != 200 {
		t.Fatalf("hit ready = %d, want 200", ready)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(be.fills) != 1 || be.fills[0] != 0x100 {
		t.Fatalf("fills = %v", be.fills)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	c, be, st := newCache(t, nil)
	first := c.Access(0x200, false, 0)
	second := c.Access(0x208, false, 5) // same 64B line, fill in flight
	if second != first {
		t.Fatalf("coalesced access ready=%d, want %d", second, first)
	}
	if st.MSHRMerges != 1 || len(be.fills) != 1 {
		t.Fatalf("merges=%d fills=%d", st.MSHRMerges, len(be.fills))
	}
	// After the fill lands the MSHR entry is reaped; a new access hits.
	if ready := c.Access(0x210, false, 500); ready != 500 {
		t.Fatalf("post-fill access = %d, want hit at 500", ready)
	}
}

func TestCoalescingDisabledRefetches(t *testing.T) {
	c, be, st := newCache(t, func(cc *config.CacheConfig) { cc.LoadCoalescing = false })
	c.Access(0x200, false, 0)
	ready := c.Access(0x208, false, 5)
	if st.MSHRMerges != 0 {
		t.Fatalf("merges = %d, want 0", st.MSHRMerges)
	}
	// Without MSHR merging the second access pays for its own refetch.
	if len(be.fills) != 2 || st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("fills=%d misses=%d hits=%d", len(be.fills), st.Misses, st.Hits)
	}
	if ready != 105 {
		t.Fatalf("refetch ready = %d, want 105", ready)
	}
	// After both fills land, accesses hit normally.
	if got := c.Access(0x210, false, 500); got != 500 {
		t.Fatalf("post-fill access = %d, want 500", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny cache: 2 ways x 1 set x 64B lines = 128B.
	c, be, st := newCache(t, func(cc *config.CacheConfig) {
		cc.SizeBytes, cc.Ways, cc.LineBytes = 128, 2, 64
	})
	c.Access(0x000, false, 0) // way 0
	c.Access(0x040, false, 1) // way 1
	c.Access(0x000, false, 2) // touch way 0 -> LRU is 0x040
	c.Access(0x080, false, 3) // evicts 0x040
	if !c.Contains(0x000) || c.Contains(0x040) || !c.Contains(0x080) {
		t.Fatal("LRU victim selection wrong")
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	if len(be.writebacks) != 0 {
		t.Fatal("clean eviction must not write back")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c, be, st := newCache(t, func(cc *config.CacheConfig) {
		cc.SizeBytes, cc.Ways, cc.LineBytes = 128, 2, 64
	})
	c.Access(0x000, true, 0) // dirty
	c.Access(0x040, false, 1)
	c.Access(0x080, false, 2) // evicts dirty 0x000
	if len(be.writebacks) != 1 || be.writebacks[0] != 0x000 {
		t.Fatalf("writebacks = %v", be.writebacks)
	}
	if st.Writebacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteNoAllocate(t *testing.T) {
	c, be, st := newCache(t, func(cc *config.CacheConfig) { cc.WriteAllocate = false })
	if ready := c.Access(0x300, true, 7); ready != 7 {
		t.Fatalf("posted write must not stall, ready = %d", ready)
	}
	if len(be.fills) != 0 || len(be.writebacks) != 1 {
		t.Fatalf("fills=%d writebacks=%d", len(be.fills), len(be.writebacks))
	}
	if c.Contains(0x300) {
		t.Fatal("no-allocate store must not install a line")
	}
	if st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlushDirty(t *testing.T) {
	c, be, _ := newCache(t, nil)
	c.Access(0x000, true, 0)
	c.Access(0x040, false, 1)
	c.Access(0x080, true, 2)
	c.FlushDirty(100)
	if len(be.writebacks) != 2 {
		t.Fatalf("flush wrote back %d lines, want 2", len(be.writebacks))
	}
	// Second flush is a no-op.
	c.FlushDirty(200)
	if len(be.writebacks) != 2 {
		t.Fatal("flush must clear dirty bits")
	}
}

func TestGeometryValidation(t *testing.T) {
	be := &fakeBackend{}
	bad := []config.CacheConfig{
		{SizeBytes: 0, Ways: 8, LineBytes: 64},
		{SizeBytes: 100, Ways: 8, LineBytes: 64},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, be, &stats.Cache{}); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
	// Non-power-of-two set counts are legal (the 24KB I$ has 48 sets).
	if _, err := New(config.CacheConfig{SizeBytes: 24 << 10, Ways: 8, LineBytes: 64}, be, &stats.Cache{}); err != nil {
		t.Errorf("48-set geometry rejected: %v", err)
	}
}

// Property: hit/miss accounting is consistent with a reference model that
// tracks resident lines as a map with the same LRU policy.
func TestQuickMatchesReferenceLRU(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := config.CacheConfig{
			SizeBytes: 1024, Ways: 4, LineBytes: 64,
			LoadCoalescing: false, WriteAllocate: true,
		}
		be := &fakeBackend{fillLatency: 0}
		st := &stats.Cache{}
		c, err := New(cfg, be, st)
		if err != nil {
			return false
		}
		nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
		type refLine struct {
			tag uint32
			use int
		}
		ref := make([][]refLine, nsets)
		clock := 0
		for i := 0; i < 400; i++ {
			addr := uint32(r.Intn(1 << 13))
			lineAddr := addr &^ uint32(cfg.LineBytes-1)
			set := c.SetIndex(addr)
			clock++
			// Reference lookup.
			refHit := false
			for j := range ref[set] {
				if ref[set][j].tag == lineAddr {
					ref[set][j].use = clock
					refHit = true
					break
				}
			}
			if !refHit {
				if len(ref[set]) < cfg.Ways {
					ref[set] = append(ref[set], refLine{lineAddr, clock})
				} else {
					v := 0
					for j := range ref[set] {
						if ref[set][j].use < ref[set][v].use {
							v = j
						}
					}
					ref[set][v] = refLine{lineAddr, clock}
				}
			}
			hitsBefore := st.Hits
			c.Access(addr, r.Intn(3) == 0, Tick(i*1000))
			gotHit := st.Hits > hitsBefore
			if gotHit != refHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
