// Package cache implements the set-associative, LRU, write-back caches used
// by the cache-centric UPMEM-PIM design of case study 4 (paper Fig 14(b),
// Fig 15/16): an instruction cache and a data cache with MSHR-based load
// coalescing. The cache is a timing/traffic model: functional data lives in
// the MRAM backing store, so only tags, recency, dirtiness and in-flight
// fills are tracked here.
package cache

import (
	"fmt"

	"upim/internal/config"
	"upim/internal/stats"
)

// Tick aliases the simulator time unit.
type Tick = config.Tick

// Backend is the memory system beneath the cache. Fill returns the tick the
// requested line's data is available; Writeback posts a dirty line to a write
// buffer and returns when it is accepted (the cache does not wait for it).
type Backend interface {
	Fill(lineAddr uint32, lineBytes int, now Tick) Tick
	Writeback(lineAddr uint32, lineBytes int, now Tick) Tick
}

type line struct {
	tag     uint32
	valid   bool
	dirty   bool
	lastUse uint64
}

// Cache is one set-associative cache instance.
type Cache struct {
	cfg      config.CacheConfig
	sets     [][]line
	nsets    uint32
	backend  Backend
	st       *stats.Cache
	useClock uint64
	inflight map[uint32]Tick // lineAddr -> fill completion (MSHR)
}

// New builds a cache. Size must be divisible by ways*line; any resulting set
// count (including non-powers-of-two) is legal.
func New(cfg config.CacheConfig, backend Backend, st *stats.Cache) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by ways*line %d", cfg.SizeBytes, cfg.LineBytes*cfg.Ways)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{
		cfg: cfg, sets: sets, nsets: uint32(nsets),
		backend: backend, st: st, inflight: map[uint32]Tick{},
	}, nil
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// index computes the line address and set. Set selection XOR-folds the
// upper address bits before the modulo (a standard anti-aliasing hash): a
// plain modulo makes every power-of-2-strided stream — e.g. 16 tasklets
// whose partitions sit exactly 32KB apart — collide into the same sets and
// thrash an 8-way cache. The modulo also keeps non-power-of-two geometries
// (the 24KB 8-way I$ = 48 sets) correct.
func (c *Cache) index(addr uint32) (lineAddr, set uint32) {
	lineAddr = addr &^ uint32(c.cfg.LineBytes-1)
	idx := lineAddr / uint32(c.cfg.LineBytes)
	h := idx ^ (idx / c.nsets) ^ (idx / c.nsets / c.nsets)
	set = h % c.nsets
	return
}

// SetIndex exposes the set-selection hash (reference models in tests).
func (c *Cache) SetIndex(addr uint32) uint32 {
	_, set := c.index(addr)
	return set
}

func (c *Cache) reapMSHR(now Tick) {
	for la, done := range c.inflight {
		if done <= now {
			delete(c.inflight, la)
		}
	}
}

// Access performs one load or store and returns the tick the data is ready
// (== now on hits). Stores follow write-back/write-allocate by default; with
// WriteAllocate disabled, store misses post through a write buffer without
// stalling or allocating.
func (c *Cache) Access(addr uint32, write bool, now Tick) Tick {
	c.st.Accesses++ // one tag/data array lookup per access, whatever the outcome
	c.reapMSHR(now)
	lineAddr, set := c.index(addr)
	ways := c.sets[set]
	c.useClock++
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			ways[i].lastUse = c.useClock
			if write {
				ways[i].dirty = true
			}
			// The tag is installed at miss time, but the data may still be
			// in flight: later accesses either ride the fill (MSHR merge)
			// or, without load coalescing, pay for a refetch of their own.
			if done, ok := c.inflight[lineAddr]; ok && done > now {
				if c.cfg.LoadCoalescing {
					c.st.MSHRMerges++
					return done
				}
				c.st.Misses++
				done = c.backend.Fill(lineAddr, c.cfg.LineBytes, now)
				c.inflight[lineAddr] = done
				return done
			}
			c.st.Hits++
			return now
		}
	}
	// Miss. MSHR coalescing: ride an in-flight fill of the same line.
	if done, ok := c.inflight[lineAddr]; ok && c.cfg.LoadCoalescing {
		c.st.MSHRMerges++
		if write {
			c.markDirty(lineAddr, set)
		}
		return done
	}
	if write && !c.cfg.WriteAllocate {
		// Posted write: traffic only, no allocation, no stall.
		c.st.Misses++
		c.st.Writebacks++
		c.backend.Writeback(lineAddr, c.cfg.LineBytes, now)
		return now
	}
	c.st.Misses++
	victim := c.pickVictim(ways)
	if ways[victim].valid {
		c.st.Evictions++
		if ways[victim].dirty {
			c.st.Writebacks++
			c.backend.Writeback(ways[victim].tag, c.cfg.LineBytes, now)
		}
	}
	done := c.backend.Fill(lineAddr, c.cfg.LineBytes, now)
	ways[victim] = line{tag: lineAddr, valid: true, dirty: write, lastUse: c.useClock}
	c.inflight[lineAddr] = done
	return done
}

func (c *Cache) markDirty(lineAddr, set uint32) {
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == lineAddr {
			c.sets[set][i].dirty = true
			return
		}
	}
}

func (c *Cache) pickVictim(ways []line) int {
	victim, oldest := 0, ^uint64(0)
	for i := range ways {
		if !ways[i].valid {
			return i
		}
		if ways[i].lastUse < oldest {
			oldest = ways[i].lastUse
			victim = i
		}
	}
	return victim
}

// Contains reports whether the line holding addr is resident (testing hook).
func (c *Cache) Contains(addr uint32) bool {
	lineAddr, set := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == lineAddr {
			return true
		}
	}
	return false
}

// FlushDirty writes back every dirty line (end-of-kernel accounting so the
// scratchpad-vs-cache byte counts compare like for like).
func (c *Cache) FlushDirty(now Tick) {
	for _, ways := range c.sets {
		for i := range ways {
			if ways[i].valid && ways[i].dirty {
				c.st.Writebacks++
				c.backend.Writeback(ways[i].tag, c.cfg.LineBytes, now)
				ways[i].dirty = false
			}
		}
	}
}
