package upim

import (
	"context"

	"upim/internal/explore"
)

// Pathfinding — the paper's design-space exploration methodology as a public
// API. Build a DesignSpace from typed axes, then Explore it: every point
// runs through the concurrent sweep engine, backed by an optional persistent
// content-addressed ResultStore so interrupted or repeated explorations
// resume instantly and a finished point is never simulated twice, even
// across processes. See cmd/pathfind for the CLI front end.

// DesignAxis is one named design dimension: an ordered list of levels, the
// first conventionally the baseline.
type DesignAxis = explore.Axis

// DesignLevel is one setting of an axis: a label, a unitless hardware cost
// (0 = baseline, +1 per doubled resource or added feature) and the mutation
// it applies to a simulation point.
type DesignLevel = explore.Level

// DesignSpace is the constrained Cartesian product of axis levels over a
// base configuration and a set of benchmarks.
type DesignSpace = explore.Space

// DesignPoint is one fully-resolved point of a design space.
type DesignPoint = explore.Point

// Exploration is one explored space: outcomes aligned with its points plus
// store-hit counters, with artifact extraction via SummaryTable,
// ParetoTable and BestTable.
type Exploration = explore.Exploration

// ExploreOutcome is the result of one design point (Cached marks store hits).
type ExploreOutcome = explore.Outcome

// ExploreOptions parameterize Explore.
type ExploreOptions = explore.Options

// ExploreGoal is one Pareto objective (lower is better).
type ExploreGoal = explore.Goal

// ResultStore is the persistent content-addressed result store behind
// resumable explorations.
type ResultStore = explore.Store

// ResultStoreStats counts store activity for one process.
type ResultStoreStats = explore.StoreStats

// NewDesignSpace builds a design space over the Table I base configuration
// at ScaleSmall; mutate the exported fields to change base config, scale or
// DPU count, and Constrain to drop points.
func NewDesignSpace(benchmarks []string, axes ...DesignAxis) *DesignSpace {
	return explore.NewSpace(benchmarks, axes...)
}

// Typed axis constructors over the paper's pathfinding dimensions.
var (
	// AxisTasklets sweeps threads per DPU (warps under ModeSIMT).
	AxisTasklets = explore.Tasklets
	// AxisDPUs sweeps the DPU allocation size.
	AxisDPUs = explore.DPUs
	// AxisFrequencyMHz sweeps the DPU clock (values must divide the tick clock).
	AxisFrequencyMHz = explore.FrequencyMHz
	// AxisLinkScale sweeps the MRAM-WRAM link bandwidth multiplier (Fig 13).
	AxisLinkScale = explore.LinkScale
	// AxisILP sweeps the Fig 12 feature ladder ("base", "D", "DR", ...).
	AxisILP = explore.ILP
	// AxisModes sweeps the memory-hierarchy variant (scratchpad/cache/simt).
	AxisModes = explore.Modes
	// AxisPolicies sweeps the serving scheduler policy (fifo/wfq/slo) — a
	// host-software axis scored by GoalP99, free and no-op on the simulated
	// point, so every level shares one store entry.
	AxisPolicies = explore.Policies
	// AxisArchs sweeps the machine architecture ("upmem", "hbm-pim"):
	// which machine description and backend simulates each point. Results
	// for different architectures never share a store entry, and energy
	// goals price each under its own default TechProfile.
	AxisArchs = explore.Archs
	// NewDesignAxis builds a custom axis from explicit levels.
	NewDesignAxis = explore.NewAxis
)

// ParseAxes parses a CLI-style axis spec
// ("tasklets=1,4,16;ilp=base,D,DRSF;link=1,2,4") into typed axes.
func ParseAxes(spec string) ([]DesignAxis, error) { return explore.ParseAxes(spec) }

// OpenResultStore opens (creating if needed) a persistent result store
// rooted at dir. Entries are one JSON file per simulation point, keyed by a
// content hash of the full point (benchmark, config, DPUs, scale, watchdog)
// and written atomically, so a killed exploration never corrupts its store.
func OpenResultStore(dir string) (*ResultStore, error) { return explore.OpenStore(dir) }

// PointKey returns the content address Explore uses for one design point's
// simulation input — the store key of its result.
func PointKey(p DesignPoint) string { return explore.KeyOf(p.EP) }

// Explore runs every point of the design space: points already in
// opts.Store are served from it without simulating, the rest run
// concurrently on a bounded worker pool (sharing one kernel build cache)
// and persist as they finish. Cancelling ctx loses only in-flight points —
// a later Explore over the same store resumes where this one stopped. The
// returned Exploration is always non-nil and point-aligned; the error is
// ctx.Err() after cancellation, else the first per-point failure.
func Explore(ctx context.Context, space *DesignSpace, opts ExploreOptions) (*Exploration, error) {
	return explore.New(opts).Explore(ctx, space)
}

// Pareto objectives for ParetoFront and Exploration.ParetoTable.
var (
	// GoalTime is modeled end-to-end seconds (kernel + transfers).
	GoalTime = explore.GoalTime
	// GoalKernelTime is modeled kernel-only seconds.
	GoalKernelTime = explore.GoalKernelTime
	// GoalCost is the summed hardware cost of the point's axis levels.
	GoalCost = explore.GoalCost
	// GoalEnergy is modeled total energy in µJ under a TechProfile (nil =
	// the committed default).
	GoalEnergy = explore.GoalEnergy
	// GoalEDP is the energy-delay product in µJ·ms under a TechProfile.
	GoalEDP = explore.GoalEDP
	// GoalP99 is served p99 tail latency in ms under the canned two-tenant
	// workload, scheduled by the point's "policy" axis level (fifo without
	// one) — the QoS pathfinding goal.
	GoalP99 = explore.GoalP99
)

// ParseGoals parses a comma-separated goal spec ("time,cost",
// "energy,cost", "edp") into Pareto objectives; energy and edp compute
// under profile p (nil = the committed default). Errors name the valid
// goals.
func ParseGoals(spec string, p *TechProfile) ([]ExploreGoal, error) {
	return explore.ParseGoals(spec, p)
}

// FormatAxes renders axes back into the ParseAxes grammar (a true inverse
// for the built-in axes).
func FormatAxes(axes []DesignAxis) string { return explore.FormatAxes(axes) }

// ParetoFront returns the non-dominated outcomes under the goals (default:
// total time vs hardware cost). Group by benchmark before calling —
// dominance across workloads is meaningless.
func ParetoFront(outs []ExploreOutcome, goals ...ExploreGoal) []ExploreOutcome {
	return explore.Pareto(outs, goals...)
}

// Outcome fidelity values (ExploreOutcome.Fidelity and store entries).
const (
	// FidelityExact marks a cycle-exact simulation result.
	FidelityExact = explore.FidelityExact
	// FidelityEstimate marks a tier-A analytical estimate never validated by
	// simulation.
	FidelityEstimate = explore.FidelityEstimate
)

// TieredExploreOptions parameterize ExploreTiered: the estimator, the
// ε-band slack, and the goals the band is computed over.
type TieredExploreOptions = explore.TieredOptions

// ExploreTriage summarizes a two-tier exploration's estimate/simulate split
// and the estimator's measured accuracy on the simulated band.
type ExploreTriage = explore.Triage

// ExploreTiered runs the space in two fidelity tiers: every feasible point
// is estimated analytically (~µs each), and only the estimated ε-Pareto
// band over the active goals is simulated cycle-exactly through the store.
// Points outside the band resolve at estimate fidelity and persist under
// the estimate fidelity tag. Band membership depends only on the space,
// calibration, goals and slack — never on store contents — so resumed
// two-tier explorations reproduce byte-identical artifacts.
func ExploreTiered(ctx context.Context, space *DesignSpace, opts ExploreOptions, topts TieredExploreOptions) (*Exploration, *ExploreTriage, error) {
	return explore.New(opts).ExploreTiered(ctx, space, topts)
}

// PlanTieredExploration performs tier-A triage only — no simulation, no
// store access — returning the predicted estimate/simulate split for the
// space (the `pathfind -plan -tier2` guard).
func PlanTieredExploration(space *DesignSpace, topts TieredExploreOptions) (*ExploreTriage, error) {
	return explore.PlanTiered(space, topts)
}
