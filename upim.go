// Package upim is uPIMulator-Go: a cycle-level simulation framework for
// UPMEM-style general-purpose processing-in-memory systems, reproducing
// "Pathfinding Future PIM Architectures by Demystifying a Commercial PIM
// Technology" (HPCA 2024).
//
// # Running workloads
//
// The primary entry point is the Runner: construct one with functional
// options, then run verified PrIM workloads under the Table I
// microarchitecture model — revolver scheduling, odd/even register-file
// hazards, WRAM/IRAM scratchpads, a DDR4-2400 MRAM bank with FR-FCFS, and
// asymmetric CPU<->DPU links:
//
//	r, err := upim.NewRunner(upim.WithTasklets(16), upim.WithScale(upim.ScaleSmall))
//	res, err := r.Run(ctx, "VA")
//
// Sweep-style characterization — the paper's methodology — runs many
// (benchmark, config, #DPUs) points concurrently on a bounded worker pool,
// building each unique kernel exactly once and streaming results as they
// finish:
//
//	points := []upim.Point{{Benchmark: "VA", DPUs: 1}, {Benchmark: "VA", DPUs: 16}, ...}
//	for sr := range r.Sweep(ctx, points) { ... }
//
// Design-space exploration — the paper's pathfinding methodology — layers
// typed axes and a persistent content-addressed result store on top of the
// sweep engine: build a DesignSpace from axes (AxisTasklets, AxisILP,
// AxisLinkScale, ...), then Explore it. Finished points persist, so
// interrupted or repeated explorations resume without re-simulating
// anything; Exploration extracts Pareto frontiers over configurable goals —
// time, hardware cost, energy, energy-delay product (ParseGoals) — plus
// ranked best configs and per-point energy breakdowns as artifacts
// (cmd/pathfind is the CLI front end).
//
// Energy and power come from an event-level model (EnergyOf, EnergyReport):
// every joule is a deterministic, linear function of a run's event counters
// under a JSON-loadable TechProfile (DefaultTechProfile, LoadTechProfile),
// so energy is bit-identical across sweep parallelism and store resumes.
//
// Every run is cancellable through its context, including mid-kernel;
// failures surface the typed errors ErrUnknownBenchmark, ErrUnsupportedMode,
// ErrTooManyTasklets and ErrWatchdogExpired. RunExperimentContext
// regenerates any of the paper's tables and figures on the same engine.
//
// # Toolchain
//
//   - Assemble/Link turn UPMEM-style assembly into loadable DPU programs
//     (the paper's custom lexer/parser/assembler/linker).
//   - NewKernel starts the typed kernel builder used by the PrIM suite.
//   - NewSystem allocates a host plus a set of simulated DPUs for running
//     hand-written kernels; System.Launch(ctx) executes them.
//
// Case-study hardware is a configuration away: WithILP("DRSF") for the
// Fig 12 ILP ladder, WithMode(ModeCache) for the on-demand-cache design,
// WithMode(ModeSIMT) (+ SIMTCoalesce) for the vector engine, MMU.Enable for
// address translation.
package upim

import (
	"context"

	"upim/internal/artifact"
	"upim/internal/asm"
	"upim/internal/config"
	"upim/internal/core"
	"upim/internal/engine"
	"upim/internal/figures"
	"upim/internal/host"
	"upim/internal/kbuild"
	"upim/internal/linker"
	"upim/internal/mem"
	"upim/internal/prim"
	"upim/internal/stats"
)

// Typed sentinel errors; match with errors.Is.
var (
	// ErrUnknownBenchmark reports a benchmark name outside the PrIM suite.
	ErrUnknownBenchmark = prim.ErrUnknownBenchmark
	// ErrUnsupportedMode reports a (benchmark, memory mode) combination with
	// no kernel variant (e.g. SIMT on anything but GEMV).
	ErrUnsupportedMode = prim.ErrUnsupportedMode
	// ErrTooManyTasklets reports a tasklet count above a benchmark's
	// WRAM-footprint limit.
	ErrTooManyTasklets = prim.ErrTooManyTasklets
	// ErrWatchdogExpired reports a kernel that exceeded its cycle budget.
	ErrWatchdogExpired = core.ErrWatchdogExpired
)

// Config is the full DPU/system hardware configuration (defaults = the
// paper's Table I).
type Config = config.Config

// Mode selects the memory-system organisation.
type Mode = config.Mode

// Memory-system organisations.
const (
	ModeScratchpad = config.ModeScratchpad
	ModeCache      = config.ModeCache
	ModeSIMT       = config.ModeSIMT
)

// DefaultConfig returns the paper's Table I configuration.
func DefaultConfig() Config { return config.Default() }

// Object is an unlinked compilation unit; Program is a linked DPU image.
type (
	Object  = linker.Object
	Program = linker.Program
)

// Assemble lowers UPMEM-style assembly source into an Object.
func Assemble(name, src string) (*Object, error) { return asm.Assemble(name, src) }

// Link lays out and validates an Object for a configuration.
func Link(obj *Object, cfg Config) (*Program, error) { return linker.Link(obj, cfg) }

// KernelBuilder is the typed macro-assembler for writing kernels in Go.
type KernelBuilder = kbuild.Builder

// NewKernel starts a kernel builder.
func NewKernel(name string) *KernelBuilder { return kbuild.New(name) }

// System is a host CPU plus a set of simulated DPUs.
type System = host.System

// Report is the phase-bucketed timing model of a run (Fig 10's buckets).
type Report = host.Report

// Transfer-accounting phases.
const (
	PhaseInput    = host.PhaseInput
	PhaseOutput   = host.PhaseOutput
	PhaseExchange = host.PhaseExchange
)

// Stats is the per-DPU statistics record (utilization, idle breakdown,
// instruction mix, DRAM/cache/MMU counters).
type Stats = stats.DPU

// NewSystem links obj under cfg and allocates n DPUs.
func NewSystem(obj *Object, cfg Config, n int) (*System, error) {
	return host.NewSystem(obj, cfg, n)
}

// MRAMBase converts an MRAM bank offset into the absolute physical address
// kernels use (the paper's 0x08000000 MRAM window).
func MRAMBase(off uint32) uint32 { return mem.MRAMBase + off }

// Scale selects dataset sizes for benchmarks and experiments.
type Scale = prim.Scale

// Dataset scales.
const (
	ScaleTiny  = prim.ScaleTiny
	ScaleSmall = prim.ScaleSmall
	ScalePaper = prim.ScalePaper
)

// Result is one verified PrIM run: the benchmark identity, the phase-
// bucketed timing report, and aggregate plus per-DPU statistics.
type Result = prim.Result

// BenchmarkResult is one verified PrIM run.
//
// Deprecated: use Result.
type BenchmarkResult = prim.Result

// CacheStats counts a Runner's build-cache activity.
type CacheStats = prim.CacheStats

// Benchmarks lists the PrIM suite in Table II order.
func Benchmarks() []string {
	var out []string
	for _, b := range prim.Benchmarks() {
		out = append(out, b.Name)
	}
	return out
}

// RunBenchmark executes one PrIM workload on n DPUs and verifies its output
// against the host golden model.
//
// Deprecated: use Runner.Run, which adds cancellation, kernel build caching
// and concurrent sweeps.
func RunBenchmark(name string, cfg Config, nDPUs int, scale Scale) (*BenchmarkResult, error) {
	return prim.RunSpec(context.Background(), prim.Spec{
		Benchmark: name, Config: cfg, DPUs: nDPUs, Scale: scale,
	})
}

// ArtifactColumn is a unit-annotated column of a result table.
type ArtifactColumn = artifact.Column

// ArtifactValue is one typed table cell: a number that keeps both its exact
// value and display formatting, or a plain string.
type ArtifactValue = artifact.Value

// Series is a named (x, y) sequence with axis metadata, extracted from a
// result table via ResultTable.Series.
type Series = artifact.Series

// Axis is one Series plot axis.
type Axis = artifact.Axis

// SuiteTable assembles RunSuite/Sweep results into an exportable artifact
// table — identity columns, phase timings in ms, and every stats counter —
// ready for WriteCSV/WriteJSON/WriteMarkdown/Fprint. Nil results (cancelled
// or failed points) are skipped.
func SuiteTable(title string, results []*Result) *ResultTable {
	return engine.ResultsTable(title, results)
}

// WriteReport writes per-table CSV, JSON and Markdown files plus a linking
// index.md into dir — the same browsable report `cmd/figures -out` emits.
func WriteReport(dir string, tables []*ResultTable) error {
	return artifact.WriteReport(dir, tables)
}

// CompareTables checks got against a reference table cell-by-cell: string
// cells must match exactly, numeric cells within the relative epsilon. It
// backs `cmd/figures -check` and is exported so library users can build the
// same tolerance-based regression oracles over their own sweeps.
func CompareTables(got, want *ResultTable, eps float64) error {
	return artifact.Compare(got, want, eps)
}

// CheckArtifact validates a regenerated experiment table against the
// embedded reference results for its key and dataset scale (committed at
// tiny scale), failing when any figure shifted beyond the relative eps
// (<= 0 selects the default 1%). This is the regression oracle behind
// `cmd/figures -check`.
func CheckArtifact(tab *ResultTable, eps float64) error {
	return figures.Check(tab, eps)
}

// Experiment regenerates one of the paper's tables or figures.
type Experiment = figures.Experiment

// ExperimentOptions parameterize RunExperiment.
type ExperimentOptions = figures.Options

// ResultTable is a typed experiment result grid: unit-annotated columns over
// cells that keep exact numeric values alongside display formatting. It
// renders to aligned console text (Fprint), CSV (WriteCSV), JSON
// (WriteJSON/DecodeTable round-trip) and Markdown (WriteMarkdown), and
// extracts line-chart series with axis metadata (Series).
type ResultTable = figures.Table

// Experiments lists every reproducible table/figure.
func Experiments() []Experiment { return figures.Experiments() }

// RunExperimentContext regenerates one table/figure by ID (e.g. "fig5",
// "fig12", "mmu", "table1"), running its simulation points concurrently on
// the shared sweep engine. Cancelling ctx aborts the experiment.
func RunExperimentContext(ctx context.Context, id string, opts ExperimentOptions) (*ResultTable, error) {
	e, err := figures.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, opts)
}

// RunExperiment regenerates one table/figure by ID.
//
// Deprecated: use RunExperimentContext.
func RunExperiment(id string, opts ExperimentOptions) (*ResultTable, error) {
	return RunExperimentContext(context.Background(), id, opts)
}
