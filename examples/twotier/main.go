// Two-tier pathfinding: triage a design space with the calibrated
// analytical estimator, then spend cycle-exact simulation only on the
// estimated Pareto band. The space below is the 5-axis acceptance space
// (108 feasible points); the plan step predicts the estimate/simulate
// split without simulating anything, the tiered exploration then
// simulates ~24% of the space, and the resulting cycle-exact frontier is
// checked against an exhaustive exploration of the same space — the
// accuracy contract the band slack buys.
//
// Run with: go run ./examples/twotier
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"upim"
)

func main() {
	space := upim.NewDesignSpace([]string{"VA"},
		upim.AxisTasklets(1, 4, 16),
		upim.AxisFrequencyMHz(350, 700),
		upim.AxisLinkScale(1, 2, 4),
		upim.AxisILP("base", "D", "DRSF"),
		upim.AxisModes(upim.ModeScratchpad, upim.ModeCache),
	)
	space.Scale = upim.ScaleTiny

	// The estimator: the committed calibration under the committed energy
	// profile. Any energy/EDP goals must be priced by the same profile —
	// ExploreTiered enforces it.
	est, err := upim.NewEstimator(nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	topts := upim.TieredExploreOptions{
		Estimator: est,
		Band:      0.03, // simulate everything within 3% of the estimated frontier
		Goals:     []upim.ExploreGoal{upim.GoalTime(), upim.GoalCost()},
	}

	// Step 1: plan. Pure tier-A triage — microseconds, no simulation, no
	// store — predicting how much tier B will cost.
	plan, err := upim.PlanTieredExploration(space, topts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d feasible points; band of %d (%.0f%%) would simulate, %d resolve by estimate\n",
		plan.Feasible, plan.Band, 100*float64(plan.Band)/float64(plan.Feasible), plan.EstimateOnly)

	// Step 2: explore in two tiers.
	ctx := context.Background()
	x, tri, err := upim.ExploreTiered(ctx, space, upim.ExploreOptions{}, topts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiered: simulated %d/%d, estimator max rel err on the band %.2f%%\n",
		x.Simulated, tri.Feasible, tri.MaxRelErr*100)

	// Step 3: the frontier is cycle-exact — estimate-fidelity outcomes never
	// rank. Compare against paying full price for the whole space.
	full, err := upim.Explore(ctx, space, upim.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tieredFront := designs(upim.ParetoFront(x.Outcomes, topts.Goals...))
	fullFront := designs(upim.ParetoFront(full.Outcomes, topts.Goals...))
	fmt.Printf("frontier: %d designs from %d simulations; exhaustive finds %d from %d\n",
		len(tieredFront), x.Simulated, len(fullFront), full.Simulated)
	all := make([]string, 0, len(fullFront))
	for d := range fullFront {
		all = append(all, d)
	}
	sort.Strings(all)
	for _, d := range all {
		marker := "MISSED"
		if tieredFront[d] {
			marker = "found"
		}
		fmt.Printf("  %-55s %s\n", d, marker)
	}

	// The triage summary as a standard artifact table (cmd/pathfind -tier2
	// prints the same and -out exports it as CSV/JSON/Markdown).
	fmt.Println()
	x.TriageTable(tri).Fprint(log.Writer())
}

// designs keys a frontier by its design labels, the stable identity for
// comparing frontiers across explorations.
func designs(front []upim.ExploreOutcome) map[string]bool {
	out := make(map[string]bool, len(front))
	for _, o := range front {
		out[o.Point.Benchmark+" "+o.Point.Design] = true
	}
	return out
}
