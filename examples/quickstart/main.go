// Quickstart: the paper's Fig 2 running example — element-wise vector
// addition — written in textual UPMEM-style assembly, assembled and linked
// by the custom toolchain, loaded onto one simulated DPU, and executed with
// full cycle-level statistics.
//
// This is the toolchain-level path (Assemble/Link/NewSystem) for running
// hand-written kernels. The verified PrIM workloads skip this plumbing:
// construct a upim.NewRunner and call Run/RunSuite/Sweep — see the other
// examples.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"upim"
)

// The DPU-side program: each tasklet takes a contiguous slice of the input,
// stages 128-element chunks of A and B into its WRAM buffers by DMA, adds
// them, and writes the result chunk back to MRAM — exactly the structure of
// the paper's Fig 2(b).
const vaSource = `
; args: 0=A 1=B 2=C (absolute MRAM addresses) 3=n
.alloc bufA 8192        ; 16 tasklets x 128 elements
.alloc bufB 8192

        lw   r0, zero, 0        ; A
        lw   r1, zero, 4        ; B
        lw   r2, zero, 8        ; C
        lw   r3, zero, 12       ; n
        ; per-tasklet range: chunk = ceil(n/NTH) rounded to 2
        add  r6, r3, nth
        sub  r6, r6, 1
        div  r6, r6, nth
        add  r6, r6, 1
        and  r6, r6, -2
        mul  r4, r6, id         ; start
        add  r5, r4, r6         ; end
        jle  r5, r3, clamped
        mov  r5, r3
clamped:
        jle  r4, r3, clamped2
        mov  r4, r3
clamped2:
        movi r7, bufA
        movi r8, bufB
        mul  r9, id, 512
        add  r7, r7, r9
        add  r8, r8, r9
chunk:  jge  r4, r5, done
        sub  r9, r5, r4         ; elems left
        jlt  r9, 128, sized
        movi r9, 128
sized:  lsl  r10, r9, 2         ; bytes
        lsl  r11, r4, 2
        add  r12, r0, r11
        ldma r7, r12, r10       ; stage A chunk
        add  r12, r1, r11
        ldma r8, r12, r10       ; stage B chunk
        mov  r13, r7
        mov  r14, r8
        add  r15, r7, r10
inner:  lw   r16, r13, 0
        lw   r17, r14, 0
        add  r16, r16, r17
        sw   r16, r13, 0
        add  r13, r13, 4
        add  r14, r14, 4
        jlt  r13, r15, inner
        add  r12, r2, r11
        sdma r7, r12, r10       ; write C chunk
        add  r4, r4, r9
        jump chunk
done:   stop
`

func main() {
	const n = 4096
	obj, err := upim.Assemble("quickstart-va", vaSource)
	if err != nil {
		log.Fatal(err)
	}
	cfg := upim.DefaultConfig()
	cfg.NumTasklets = 16
	sys, err := upim.NewSystem(obj, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Host side (the paper's Fig 2(a)): prepare inputs, copy them into the
	// DPU's MRAM, pass pointers through the argument block, launch, and
	// retrieve the result.
	a := make([]byte, 4*n)
	b := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(a[4*i:], uint32(i))
		binary.LittleEndian.PutUint32(b[4*i:], uint32(3*i+1))
	}
	const (
		aOff = 0
		bOff = 4 * n
		cOff = 8 * n
	)
	// Launches take a context, so a stuck kernel can be cancelled or
	// deadline-bounded instead of running to the cycle watchdog.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	must(sys.CopyToMRAM(0, aOff, a))
	must(sys.CopyToMRAM(0, bOff, b))
	must(sys.WriteArgs(0, upim.MRAMBase(aOff), upim.MRAMBase(bOff), upim.MRAMBase(cOff), n))
	must(sys.Launch(ctx))

	sys.SetPhase(upim.PhaseOutput)
	out, err := sys.ReadMRAM(0, cOff, 4*n)
	must(err)
	for i := 0; i < n; i++ {
		got := binary.LittleEndian.Uint32(out[4*i:])
		if got != uint32(4*i+1) {
			log.Fatalf("c[%d] = %d, want %d", i, got, 4*i+1)
		}
	}
	fmt.Printf("vector add of %d elements verified on 1 DPU x %d tasklets\n\n", n, cfg.NumTasklets)
	fmt.Print(sys.DPU(0).Stats().Summary())
	rep := sys.Report()
	fmt.Printf("\nmodeled time: kernel %.1f us, CPU->DPU %.1f us, DPU->CPU %.1f us\n",
		rep.KernelSeconds*1e6, rep.TransferSeconds[0]*1e6, rep.TransferSeconds[1]*1e6)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
