// Energy-aware pathfinding: the same design-space exploration the paper
// judges by time alone, re-judged by energy and energy-delay product. The
// ILP ladder and a faster MRAM link both buy speed, but they spend silicon
// and (through leakage and link/DRAM events) joules differently per
// workload — so the time/cost, energy/cost and EDP/cost frontiers can pick
// different future designs, which is exactly why the explorer carries an
// energy model at all. (At tiny scale leakage dominates and the frontiers
// largely agree; rerun at ScaleSmall to watch them diverge.)
//
// Run with: go run ./examples/energyaware
package main

import (
	"context"
	"fmt"
	"log"

	"upim"
)

func main() {
	space := upim.NewDesignSpace([]string{"VA", "GEMV"},
		upim.AxisTasklets(4, 16),
		upim.AxisILP("base", "DRSF"),
		upim.AxisLinkScale(1, 4),
	)
	space.Scale = upim.ScaleTiny

	x, err := upim.Explore(context.Background(), space, upim.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Energy under the committed default TechProfile (pass a profile loaded
	// with upim.LoadTechProfile to re-judge under your own calibration).
	for _, goals := range [][]upim.ExploreGoal{
		{upim.GoalTime(), upim.GoalCost()},
		{upim.GoalEnergy(nil), upim.GoalCost()},
		{upim.GoalEDP(nil), upim.GoalCost()},
	} {
		fmt.Printf("=== frontier: %s vs %s ===\n", goals[0].Name, goals[1].Name)
		for _, bench := range space.Benchmarks {
			var group []upim.ExploreOutcome
			for _, o := range x.Outcomes {
				if o.Point.Benchmark == bench {
					group = append(group, o)
				}
			}
			for _, o := range upim.ParetoFront(group, goals...) {
				rep := upim.EnergyOf(o.Result, nil)
				fmt.Printf("  %-5s %-34s cost %.0f  %8.2f ms  %8.2f uJ  %8.2f mW\n",
					bench, o.Point.Design, o.Point.Cost,
					o.Result.Report.Total()*1e3, rep.MicroJoules(),
					rep.PowerWatts(o.Result.Report.Total())*1e3)
			}
		}
	}

	// The full per-point breakdown as a standard artifact table.
	fmt.Println()
	x.EnergyTable(nil).Fprint(log.Writer())
}
