// Coordinated pathfinding: shard one exploration across four workers
// through leased work units and a shared result store — then prove the
// headline guarantee by injecting faults. Every worker is killed once
// mid-shard (its lease expires, the shard re-queues, a respawned worker
// picks it up) and one store write is torn after landing (the merge
// detects the corruption and re-simulates), yet the coordinated run's
// Pareto frontier is identical to a clean single-process exploration of
// the same space: workers only fill the store, and the final merge is
// exactly the single-process path.
//
// Run with: go run ./examples/coordinated
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"upim"
)

func main() {
	space := upim.NewDesignSpace([]string{"VA", "BS"},
		upim.AxisTasklets(1, 4),
		upim.AxisLinkScale(1, 2),
		upim.AxisILP("base", "D"),
	)
	space.Scale = upim.ScaleTiny
	ctx := context.Background()

	// Reference: a clean single-process exploration on its own store.
	refDir, err := os.MkdirTemp("", "coordinated-ref-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(refDir)
	refStore, err := upim.OpenResultStore(refDir)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := upim.Explore(ctx, space, upim.ExploreOptions{Store: refStore})
	if err != nil {
		log.Fatal(err)
	}

	// Coordinated: four workers drain leased 2-point shards of the same
	// space through a fresh store, under an adversarial fault plan.
	dir, err := os.MkdirTemp("", "coordinated-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := upim.OpenResultStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	var events bytes.Buffer
	var last upim.CoordProgress
	x, _, err := upim.CoordinatedExplore(ctx, space, upim.CoordOptions{
		Workers:   4,
		ShardSize: 2,
		TTL:       150 * time.Millisecond,
		Heartbeat: 30 * time.Millisecond,
		Store:     store,
		Faults: &upim.FaultPlan{
			// Kill every worker after its first point — mid-shard.
			KillAfterPoints: map[int]int{0: 1, 1: 1, 2: 1, 3: 1},
			// Tear the third successful store write after it lands.
			CorruptPuts: []int{3},
		},
		Events:     &events,
		OnProgress: func(p upim.CoordProgress) { last = p },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final progress:", last)

	// The store's corrupt counter shows the torn write was caught, and the
	// events log shows which faults fired.
	fmt.Printf("store: %d corrupt entries detected and repaired\n", store.Stats().Corrupt)
	evs, err := upim.ParseCoordEvents(&events)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range evs {
		counts[e.Type]++
	}
	fmt.Printf("events: %d kills, %d lease expiries, %d reclaims, %d merge re-simulations\n",
		counts["worker_kill"], counts["lease_expire"], counts["lease_reclaim"], counts["merge_simulated"])

	// Despite the carnage, the frontier matches the clean run exactly.
	refFront := upim.ParetoFront(ref.Outcomes)
	gotFront := upim.ParetoFront(x.Outcomes)
	if len(refFront) != len(gotFront) {
		log.Fatalf("frontier diverged: %d vs %d points", len(gotFront), len(refFront))
	}
	for i := range refFront {
		if refFront[i].Point.Design != gotFront[i].Point.Design ||
			refFront[i].Point.Benchmark != gotFront[i].Point.Benchmark {
			log.Fatalf("frontier point %d diverged: %s vs %s",
				i, gotFront[i].Point.Design, refFront[i].Point.Design)
		}
	}
	fmt.Printf("frontier: %d points, identical to the clean single-process run\n", len(gotFront))
	x.ParetoTable().Fprint(os.Stdout)
}
