// Serving (case study 3, carried to its datacenter conclusion): the paper
// argues commercial PIM must host *concurrent tenants*, which needs (a) an
// MMU for address-space isolation and (b) a memory organisation that
// doesn't force co-located programs to fight over one scratchpad. This
// example walks that argument end to end and then actually runs the
// system as a server under load.
//
//  1. Transparency: co-locating BS and TS — the paper's complementary
//     memory-bound + compute-bound candidates — on one DPU means one 64KB
//     WRAM must hold both tenants' static buffers plus stacks for all 24
//     tasklets. The linker rejects the merged image, so scratchpad-centric
//     co-location requires rewriting the tenants (the paper's
//     "non-option"). The same image links fine under the cache-centric
//     model, where statics remap into the DRAM-backed space.
//  2. Security/practicality: running the two tenants on disjoint DPU
//     groups with the MMU enabled (16-entry TLB, 4KB pages, demand faults
//     handled by the host) costs only a small slowdown, matching the
//     paper's "average 0.8%, max 14.1%" finding.
//  3. Serving: with isolation established, drive both tenants' request
//     streams through upim.Serve — a seeded Poisson arrival process
//     scheduled onto disjoint DPU rank groups — and compare FIFO against
//     weighted-fair and SLO-aware scheduling on tail latency.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"

	"upim"
)

// tenantStatics mirrors the WRAM footprints of the two PrIM kernels as the
// suite links them (per-tasklet staging buffers and result trackers).
func tenantStatics(b *upim.KernelBuilder, tenant string) int {
	sizes := map[string][][2]any{
		"BS": {{"qbuf", 16 * 64 * 4}, {"pbuf", 16 * 256}, {"obuf", 16 * 64 * 4}},
		"TS": {{"best", 16 * 64 * 8}, {"qbuf", 64 * 8 * 4}, {"sbuf", 16 * (120 + 8) * 4}},
	}
	total := 0
	for _, s := range sizes[tenant] {
		b.Static(tenant+"."+s[0].(string), s[1].(int), 8)
		total += s[1].(int)
	}
	return total
}

func main() {
	// --- Part 1: the transparency problem -------------------------------
	merged := upim.NewKernel("bs-plus-ts")
	total := tenantStatics(merged, "BS") + tenantStatics(merged, "TS")
	merged.Stop()
	obj := merged.MustBuild()

	// Co-location shares the DPU: both tenants' tasklets (24 = the hardware
	// maximum) and both static footprints in one WRAM.
	coloc := upim.DefaultConfig()
	coloc.NumTasklets = 24

	fmt.Println("Part 1: co-locating BS and TS in one scratchpad")
	fmt.Printf("  combined WRAM statics: %d KB; stacks for 24 tasklets: %d KB; WRAM: %d KB\n",
		total>>10, 24*coloc.StackBytes>>10, coloc.WRAMBytes>>10)
	if _, err := upim.Link(obj, coloc); err != nil {
		fmt.Printf("  linker: %v\n", err)
		fmt.Println("  -> transparent scratchpad co-location is impossible without")
		fmt.Println("     rewriting the tenants, exactly the paper's argument.")
	} else {
		log.Fatal("expected the merged image to overflow WRAM")
	}
	cacheCfg := coloc
	cacheCfg.Mode = upim.ModeCache
	if _, err := upim.Link(obj, cacheCfg); err != nil {
		log.Fatalf("cache-mode link should succeed: %v", err)
	}
	fmt.Println("  cache-centric link of the same image: OK (statics remapped to DRAM-backed space)")

	// --- Part 2: per-DPU tenants with MMU isolation ----------------------
	fmt.Println("\nPart 2: per-DPU tenants with address translation")
	for _, tenant := range []string{"BS", "TS"} {
		base := runTenant(tenant, false)
		mmu := runTenant(tenant, true)
		over := float64(mmu.Stats.Cycles)/float64(base.Stats.Cycles) - 1
		hits := float64(mmu.Stats.MMU.TLBHits)
		rate := hits / (hits + float64(mmu.Stats.MMU.TLBMisses))
		fmt.Printf("  tenant %-4s  MMU slowdown %5.2f%%  TLB hit rate %5.2f%%  walks %d  faults %d\n",
			tenant, over*100, rate*100, mmu.Stats.MMU.TableWalks, mmu.Stats.MMU.PageFaults)
	}
	fmt.Println("  -> translation is cheap because DMA staging is coarse-grained and")
	fmt.Println("     spatially local, exactly as the paper observes.")

	// --- Part 3: the system as a server under load ------------------------
	// Two tenants with different needs share the machine: "latency" issues
	// binary searches under a tight SLO with 3x the fair-share weight;
	// "batch" runs time series analysis and only cares about throughput.
	// The MMU-enabled path from part 2 is the default for every request.
	fmt.Println("\nPart 3: serving both tenants from one request stream")
	opts := upim.ServeOptions{
		Tenants: []upim.ServeTenant{
			{Name: "latency", Mix: []string{"BS"}, Weight: 3, SLOClass: "latency"},
			{Name: "batch", Mix: []string{"TS"}, Weight: 1, SLOClass: "batch"},
		},
		Groups:   2,  // two disjoint DPU rank groups
		MaxBatch: 4,  // coalesce same-kernel requests per dispatch
		Requests: 24, // per tenant
		Load:     0.9,
		Seed:     1,
		Scale:    upim.ScaleTiny,
	}
	for _, policy := range []string{"fifo", "wfq", "slo"} {
		p, err := upim.NewSchedulingPolicy(policy, opts.Tenants)
		if err != nil {
			log.Fatal(err)
		}
		opts.Policy = p
		res, err := upim.Serve(context.Background(), opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  policy %-5s  p50 %8.3f ms  p99 %8.3f ms  %6.1f req/s  %8.2f uJ/req  SLO %5.1f%%\n",
			policy, res.Overall.P50MS, res.Overall.P99MS,
			res.Overall.ThroughputRPS, res.Overall.EnergyPerReqUJ, 100*res.Overall.SLOAttained)
	}
	fmt.Println("  -> same arrivals, same hardware: only the scheduling policy moved")
	fmt.Println("     the tail. That QoS axis is what `pathfind -goals p99` explores.")
}

func runTenant(name string, mmu bool) *upim.Result {
	cfg := upim.DefaultConfig()
	if mmu {
		cfg.MMU.Enable = true
		cfg.MMU.Prefault = false
	}
	r, err := upim.NewRunner(
		upim.WithConfig(cfg),
		upim.WithTasklets(16),
		upim.WithDPUs(2),
		upim.WithScale(upim.ScaleSmall),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Run(context.Background(), name)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
