// Cache vs scratchpad (case study 4, Fig 15/16): BS statically overfetches
// 256B per probe under the scratchpad-centric model, so an on-demand cache
// slashes its DRAM traffic; UNI's perfectly predictable streaming is the
// opposite — explicit DMA staging beats the cache. Neither design wins
// everywhere, which is the paper's point.
//
// Run with: go run ./examples/cachevsscratch
package main

import (
	"fmt"
	"log"

	"upim"
)

func main() {
	for _, name := range []string{"BS", "UNI"} {
		fmt.Printf("=== %s (16 tasklets, small scale) ===\n", name)
		var spadCycles, spadBytes, cacheCycles, cacheBytes float64
		for _, mode := range []upim.Mode{upim.ModeScratchpad, upim.ModeCache} {
			cfg := upim.DefaultConfig()
			cfg.NumTasklets = 16
			cfg.Mode = mode
			res, err := upim.RunBenchmark(name, cfg, 1, upim.ScaleSmall)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11s %10d cycles, %8.2f MB read from DRAM", mode, res.Stats.Cycles,
				float64(res.Stats.DRAM.BytesRead)/1e6)
			if mode == upim.ModeCache {
				fmt.Printf("  (D$ hit rate %.1f%%, %d MSHR merges)",
					res.Stats.DCache.HitRate()*100, res.Stats.DCache.MSHRMerges)
				cacheCycles = float64(res.Stats.Cycles)
				cacheBytes = float64(res.Stats.DRAM.BytesRead)
			} else {
				spadCycles = float64(res.Stats.Cycles)
				spadBytes = float64(res.Stats.DRAM.BytesRead)
			}
			fmt.Println()
		}
		fmt.Printf("  cache reads %.1fx %s DRAM bytes and runs %.2fx %s\n\n",
			ratio(cacheBytes, spadBytes), fewerMore(cacheBytes, spadBytes),
			ratio(cacheCycles, spadCycles), fasterSlower(cacheCycles, spadCycles))
	}
}

func ratio(a, b float64) float64 {
	if a < b {
		return b / a
	}
	return a / b
}

func fewerMore(a, b float64) string {
	if a < b {
		return "fewer"
	}
	return "more"
}

func fasterSlower(a, b float64) string {
	if a < b {
		return "faster"
	}
	return "slower"
}
