// Cache vs scratchpad (case study 4, Fig 15/16): BS statically overfetches
// 256B per probe under the scratchpad-centric model, so an on-demand cache
// slashes its DRAM traffic; UNI's perfectly predictable streaming is the
// opposite — explicit DMA staging beats the cache. Neither design wins
// everywhere, which is the paper's point.
//
// The four (benchmark x mode) points run concurrently through Runner.Sweep,
// with the memory model selected per point via option overrides.
//
// Run with: go run ./examples/cachevsscratch
package main

import (
	"context"
	"fmt"
	"log"

	"upim"
)

func main() {
	r, err := upim.NewRunner(
		upim.WithTasklets(16),
		upim.WithScale(upim.ScaleSmall),
	)
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"BS", "UNI"}
	modes := []upim.Mode{upim.ModeScratchpad, upim.ModeCache}
	var points []upim.Point
	for _, name := range names {
		for _, mode := range modes {
			points = append(points, upim.Point{
				Benchmark: name,
				Options:   []upim.RunnerOption{upim.WithMode(mode)},
			})
		}
	}
	results := make([]*upim.Result, len(points))
	for sr := range r.Sweep(context.Background(), points) {
		if sr.Err != nil {
			log.Fatal(sr.Err)
		}
		results[sr.Index] = sr.Result
	}

	for i, name := range names {
		fmt.Printf("=== %s (16 tasklets, small scale) ===\n", name)
		var spadCycles, spadBytes, cacheCycles, cacheBytes float64
		for j, mode := range modes {
			res := results[i*len(modes)+j]
			fmt.Printf("  %-11s %10d cycles, %8.2f MB read from DRAM", mode, res.Stats.Cycles,
				float64(res.Stats.DRAM.BytesRead)/1e6)
			if mode == upim.ModeCache {
				fmt.Printf("  (D$ hit rate %.1f%%, %d MSHR merges)",
					res.Stats.DCache.HitRate()*100, res.Stats.DCache.MSHRMerges)
				cacheCycles = float64(res.Stats.Cycles)
				cacheBytes = float64(res.Stats.DRAM.BytesRead)
			} else {
				spadCycles = float64(res.Stats.Cycles)
				spadBytes = float64(res.Stats.DRAM.BytesRead)
			}
			fmt.Println()
		}
		fmt.Printf("  cache reads %.1fx %s DRAM bytes and runs %.2fx %s\n\n",
			ratio(cacheBytes, spadBytes), fewerMore(cacheBytes, spadBytes),
			ratio(cacheCycles, spadCycles), fasterSlower(cacheCycles, spadCycles))
	}
}

func ratio(a, b float64) float64 {
	if a < b {
		return b / a
	}
	return a / b
}

func fewerMore(a, b float64) string {
	if a < b {
		return "fewer"
	}
	return "more"
}

func fasterSlower(a, b float64) string {
	if a < b {
		return "faster"
	}
	return "slower"
}
