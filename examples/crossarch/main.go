// Cross-architecture pathfinding: the same workloads explored on two
// machines — the cycle-exact UPMEM DPU core and the HBM-PIM-style
// bank-level MAC model — in one design space, with a Pareto frontier over
// modeled time, energy and hardware cost. The arch axis attaches a machine
// description to each point; the engine dispatches it to the registered
// backend, the store keys it into the content address (architectures never
// share cached results), and the energy goal prices each architecture
// under its own default TechProfile.
//
// Run with: go run ./examples/crossarch
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"upim"
)

func main() {
	space := upim.NewDesignSpace([]string{"GEMV", "VA"},
		upim.AxisArchs("upmem", "hbm-pim"),
		upim.AxisDPUs(1, 2),
	)
	space.Scale = upim.ScaleTiny

	x, err := upim.Explore(context.Background(), space, upim.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Frontier over time, energy and cost. A nil profile prices each
	// point's energy under its architecture's own committed default.
	goals := []upim.ExploreGoal{upim.GoalTime(), upim.GoalEnergy(nil), upim.GoalCost()}
	x.ParetoTable(goals...).Fprint(os.Stdout)

	// The per-point view: the MAC array wins time and energy outright on
	// the kernels it can run, but at a lane-count cost the frontier keeps
	// visible — the paper's pathfinding trade-off in one table.
	for _, o := range x.Outcomes {
		if o.Err != nil {
			log.Fatalf("%s %s: %v", o.Point.Benchmark, o.Point.Design, o.Err)
		}
		arch := o.Result.Arch
		if arch == "" {
			arch = "upmem"
		}
		e := o.Result.Energy(nil)
		fmt.Printf("%-5s %-8s sites=%d cost=%.0f  kernel=%8.1fus total=%8.1fus  %7.2fuJ (%s)\n",
			o.Point.Benchmark, arch, o.Result.DPUs, o.Point.Cost,
			o.Result.Report.KernelSeconds*1e6, o.Result.Report.Total()*1e6,
			e.MicroJoules(), e.Profile)
	}
}
