// Strong scaling (the paper's Fig 10 methodology): run streaming and
// communication-bound PrIM workloads across 1/4/16/64 DPUs and watch where
// the time goes — kernels shrink with DPU count while CPU<->DPU transfer
// becomes the wall, and BS/BFS/NW scale sub-linearly because their
// communication grows with the DPU count.
//
// The 16 (benchmark x DPUs) points run concurrently through Runner.Sweep,
// and each benchmark's kernel is assembled and linked once for all four DPU
// counts.
//
// Run with: go run ./examples/strongscaling
package main

import (
	"context"
	"fmt"
	"log"

	"upim"
)

var (
	names     = []string{"VA", "RED", "BS", "BFS"}
	dpuCounts = []int{1, 4, 16, 64}
)

func main() {
	r, err := upim.NewRunner(
		upim.WithTasklets(16),
		upim.WithScale(upim.ScaleSmall),
	)
	if err != nil {
		log.Fatal(err)
	}

	var points []upim.Point
	for _, name := range names {
		for _, dpus := range dpuCounts {
			points = append(points, upim.Point{Benchmark: name, DPUs: dpus})
		}
	}

	// Results stream in completion order; collect by index to print in
	// declaration order.
	results := make([]*upim.Result, len(points))
	for sr := range r.Sweep(context.Background(), points) {
		if sr.Err != nil {
			log.Fatal(sr.Err)
		}
		results[sr.Index] = sr.Result
	}

	for i, name := range names {
		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("%6s %12s %12s %12s %12s %10s\n",
			"DPUs", "kernel ms", "cpu->dpu ms", "dpu->cpu ms", "dpu<->dpu ms", "speedup")
		base := results[i*len(dpuCounts)].Report.Total()
		for _, res := range results[i*len(dpuCounts) : (i+1)*len(dpuCounts)] {
			total := res.Report.Total()
			fmt.Printf("%6d %12.3f %12.3f %12.3f %12.3f %9.2fx\n",
				res.DPUs,
				res.Report.KernelSeconds*1e3,
				res.Report.TransferSeconds[0]*1e3,
				res.Report.TransferSeconds[1]*1e3,
				res.Report.TransferSeconds[2]*1e3,
				base/total)
		}
		fmt.Println()
	}
	cs := r.CacheStats()
	fmt.Printf("(%d points, %d kernel builds, %d cache hits)\n", len(points), cs.Builds, cs.Hits)
}
