// Strong scaling (the paper's Fig 10 methodology): run streaming and
// communication-bound PrIM workloads across 1/4/16/64 DPUs and watch where
// the time goes — kernels shrink with DPU count while CPU<->DPU transfer
// becomes the wall, and BS/BFS/NW scale sub-linearly because their
// communication grows with the DPU count.
//
// Run with: go run ./examples/strongscaling
package main

import (
	"fmt"
	"log"

	"upim"
)

func main() {
	cfg := upim.DefaultConfig()
	cfg.NumTasklets = 16

	for _, name := range []string{"VA", "RED", "BS", "BFS"} {
		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("%6s %12s %12s %12s %12s %10s\n",
			"DPUs", "kernel ms", "cpu->dpu ms", "dpu->cpu ms", "dpu<->dpu ms", "speedup")
		var base float64
		for _, dpus := range []int{1, 4, 16, 64} {
			res, err := upim.RunBenchmark(name, cfg, dpus, upim.ScaleSmall)
			if err != nil {
				log.Fatal(err)
			}
			total := res.Report.Total()
			if dpus == 1 {
				base = total
			}
			fmt.Printf("%6d %12.3f %12.3f %12.3f %12.3f %9.2fx\n",
				dpus,
				res.Report.KernelSeconds*1e3,
				res.Report.TransferSeconds[0]*1e3,
				res.Report.TransferSeconds[1]*1e3,
				res.Report.TransferSeconds[2]*1e3,
				base/total)
		}
		fmt.Println()
	}
}
