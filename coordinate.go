package upim

import (
	"context"
	"io"
	"net/http"

	"upim/internal/coord"
	"upim/internal/explore"
)

// Coordination — sharded multi-worker exploration. A coordinator slices the
// deterministic point enumeration of a DesignSpace into leased work units,
// workers drain them through a shared StoreBackend under heartbeat renewal,
// dead workers lose their leases and their shards re-queue, and a final
// merge pass over the populated store assembles the Exploration — so a
// coordinated run emits byte-identical artifacts to a single-process one
// over the same space. Run in-process (CoordinatedExplore), or serve the
// lease protocol and the store over HTTP (ServeCoordinator + Work) to spread
// one exploration across processes and machines. See cmd/pathfind
// (-coordinator, serve, work) for the CLI front end.

// StoreBackend is the pluggable result-store interface explorations read and
// write through: the local content-addressed directory store (ResultStore)
// and the HTTP client store (HTTPResultStore) both implement it, as can any
// user backend honoring the fidelity contract (exact results never downgrade
// to estimates; undecodable entries degrade to misses and count in Stats).
type StoreBackend = explore.Backend

// HTTPResultStore is a StoreBackend speaking to a remote result-store server
// with per-call timeouts and retry/backoff on transient failures.
type HTTPResultStore = explore.HTTPStore

// HTTPResultStoreOptions tune an HTTPResultStore client.
type HTTPResultStoreOptions = explore.HTTPStoreOptions

// ResultStoreServer serves any StoreBackend over HTTP for remote workers.
type ResultStoreServer = explore.StoreServer

// DialResultStore prepares an HTTP result-store client for baseURL (no I/O
// until the first call).
func DialResultStore(baseURL string, opts HTTPResultStoreOptions) (*HTTPResultStore, error) {
	return explore.DialStore(baseURL, opts)
}

// NewResultStoreServer wraps a backend in its HTTP server handler.
func NewResultStoreServer(b StoreBackend) *ResultStoreServer { return explore.NewStoreServer(b) }

// CoordOptions parameterize a coordinated exploration.
type CoordOptions = coord.Options

// CoordProgress is one live snapshot of a coordinated exploration (streamed
// to CoordOptions.OnProgress).
type CoordProgress = coord.Progress

// CoordStatus is the lease-level coordination snapshot.
type CoordStatus = coord.Status

// CoordEvent is one line of the machine-readable coordination events log.
type CoordEvent = coord.Event

// FaultPlan deterministically injects worker deaths, dropped or delayed
// lease renewals, and corrupted store writes into a coordinated exploration
// — the crash-test harness behind the byte-identity guarantees.
type FaultPlan = coord.FaultPlan

// CoordinatedExplore explores the space with opts.Workers coordinated
// workers sharing opts.Store, returning the same Exploration (and, when
// opts.Tiered is set, Triage) a single-process Explore/ExploreTiered over
// the same space would: the artifacts are byte-identical by construction.
func CoordinatedExplore(ctx context.Context, space *DesignSpace, opts CoordOptions) (*Exploration, *ExploreTriage, error) {
	return coord.Run(ctx, space, opts)
}

// ParseCoordEvents reads back a JSONL coordination events log, tolerating a
// truncated final line.
func ParseCoordEvents(r io.Reader) ([]CoordEvent, error) { return coord.ParseEvents(r) }

// CoordinatorOptions tune a served Coordinator (shard size, lease TTL).
type CoordinatorOptions = coord.CoordinatorOptions

// WorkUnit is one leased shard as handed to a worker.
type WorkUnit = coord.WorkUnit

// ServeCoordinator builds the HTTP handler for one coordinated exploration
// served to remote workers: the lease protocol for the space plus the result
// store, composed on one mux so `pathfind work -connect URL` needs a single
// address. The exploration's watchdog travels in the spec so workers compute
// identical store keys. Spaces with programmatic Constrain filters cannot be
// served (constraints do not serialize) and are refused.
func ServeCoordinator(space *DesignSpace, backend StoreBackend, watchdog uint64, copts CoordinatorOptions, events io.Writer) (http.Handler, *CoordHandle, error) {
	spec, err := coord.SpecFor(space, watchdog)
	if err != nil {
		return nil, nil, err
	}
	pts, err := space.Points()
	if err != nil {
		return nil, nil, err
	}
	if events != nil {
		copts.Events = coord.NewLog(events)
	}
	c := coord.NewCoordinator(len(pts), copts)
	mux := http.NewServeMux()
	coord.NewServer(c, spec).Register(mux)
	ss := explore.NewStoreServer(backend)
	mux.Handle("/v1/exact/", ss)
	mux.Handle("/v1/estimate/", ss)
	mux.Handle("/v1/count", ss)
	mux.Handle("/v1/stats", ss)
	return mux, &CoordHandle{c: c, points: len(pts)}, nil
}

// CoordHandle observes a served coordination run.
type CoordHandle struct {
	c      *coord.Coordinator
	points int
}

// Status snapshots lease-level progress.
func (h *CoordHandle) Status() CoordStatus { return h.c.Snapshot() }

// Done reports whether every shard has completed.
func (h *CoordHandle) Done() bool { return h.c.Done() }

// Points is the total point count of the served space.
func (h *CoordHandle) Points() int { return h.points }

// WorkOptions configure one remote worker process.
type WorkOptions = coord.WorkOptions

// Work runs one remote worker against a serving coordinator until all
// shards complete: it fetches the space spec, enumerates the same points
// locally, and drains leased shards through the HTTP store at the same
// address. Remote workers run exact fidelity only.
func Work(ctx context.Context, opts WorkOptions) error { return coord.Work(ctx, opts) }
