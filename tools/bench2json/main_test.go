package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: upim
cpu: Test CPU
BenchmarkTable1_Config-8   	     100	  12000 ns/op	 2048 B/op	      50 allocs/op
BenchmarkSimulationRate-8  	      10	 3000000 ns/op	    16000 KIPS	 1000000 B/op	     100 allocs/op
PASS
ok  	upim	1.234s
`

func parseSample(t *testing.T, s string) *Report {
	t.Helper()
	r, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseBenchOutput(t *testing.T) {
	r := parseSample(t, sample)
	if r.GOOS != "linux" || r.CPU != "Test CPU" || len(r.Benchmarks) != 2 {
		t.Fatalf("parsed header/records wrong: %+v", r)
	}
	b := r.Benchmarks[1]
	if b.Name != "BenchmarkSimulationRate" || b.NsPerOp != 3000000 ||
		b.AllocsPerOp != 100 || b.Metrics["KIPS"] != 16000 {
		t.Fatalf("record: %+v", b)
	}
}

func TestDiffGate(t *testing.T) {
	base := parseSample(t, sample)

	t.Run("improvement passes", func(t *testing.T) {
		cur := parseSample(t, strings.ReplaceAll(sample, "50 allocs/op", "10 allocs/op"))
		var out strings.Builder
		if bad := diff(&out, base, cur, "base", splitGate("BenchmarkTable1_Config"), 0.10); len(bad) != 0 {
			t.Fatalf("improvement flagged as regression: %v", bad)
		}
		for _, want := range []string{"allocs/op", "-80.0%", "KIPS"} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("delta table missing %q:\n%s", want, out.String())
			}
		}
	})

	t.Run("regression fails", func(t *testing.T) {
		cur := parseSample(t, strings.ReplaceAll(sample, "50 allocs/op", "60 allocs/op"))
		var out strings.Builder
		bad := diff(&out, base, cur, "base", splitGate("BenchmarkTable1_Config"), 0.10)
		if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkTable1_Config") {
			t.Fatalf("regression not caught: %v", bad)
		}
	})

	t.Run("within tolerance passes", func(t *testing.T) {
		cur := parseSample(t, strings.ReplaceAll(sample, "50 allocs/op", "54 allocs/op"))
		var out strings.Builder
		if bad := diff(&out, base, cur, "base", splitGate("BenchmarkTable1_Config"), 0.10); len(bad) != 0 {
			t.Fatalf("within-tolerance drift flagged: %v", bad)
		}
	})

	t.Run("missing gated benchmark fails", func(t *testing.T) {
		cur := parseSample(t, sample)
		cur.Benchmarks = cur.Benchmarks[1:] // drop Table1
		var out strings.Builder
		bad := diff(&out, base, cur, "base", splitGate("BenchmarkTable1_Config"), 0.10)
		if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
			t.Fatalf("missing gated benchmark not caught: %v", bad)
		}
	})

	t.Run("ungated regression only reported", func(t *testing.T) {
		cur := parseSample(t, strings.ReplaceAll(sample, "50 allocs/op", "500 allocs/op"))
		var out strings.Builder
		if bad := diff(&out, base, cur, "base", splitGate(""), 0.10); len(bad) != 0 {
			t.Fatalf("ungated benchmark gated: %v", bad)
		}
	})
}
