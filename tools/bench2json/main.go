// Command bench2json converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON report (BENCH_3.json in CI): one record per
// benchmark carrying ns/op, allocation counters, and every custom metric
// (the headline figure numbers bench_test.go attaches via b.ReportMetric).
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./tools/bench2json -out BENCH_3.json
//
// The parser is deliberately forgiving: non-benchmark lines (goos/goarch,
// PASS, package summaries) are skipped, and context lines (goos, goarch,
// cpu) are captured into the report header when present.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"package,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			r.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			r.Benchmarks = append(r.Benchmarks, b)
		}
	}
	return r, sc.Err()
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8  3  123456 ns/op  42.0 some-metric  100 B/op  7 allocs/op
//
// into its typed record. Fields come in (value, unit) pairs after the
// iteration count.
func parseBench(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("too few fields")
	}
	name := fields[0]
	// Strip the -N GOMAXPROCS suffix if present.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}
