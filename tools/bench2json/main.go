// Command bench2json converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON report (BENCH_8.json in CI): one record per
// benchmark carrying ns/op, allocation counters, and every custom metric
// (the headline figure numbers bench_test.go attaches via b.ReportMetric).
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./tools/bench2json -out BENCH_8.json
//
// With -baseline it switches to diff mode: instead of a report it prints a
// per-benchmark delta table (ns/op, B/op, allocs/op and the KIPS throughput
// metric) against a previously committed report, and -gate turns allocs/op
// regressions on the named benchmarks into a non-zero exit — CI's hard
// allocation gate:
//
//	go test -bench=. -benchmem -run='^$' . |
//	  go run ./tools/bench2json -baseline BENCH_8.json \
//	    -gate BenchmarkTable1_Config,BenchmarkTable2_Datasets
//
// The current run can also be read from an existing JSON report via -in,
// so two saved reports can be diffed without re-running anything.
//
// The parser is deliberately forgiving: non-benchmark lines (goos/goarch,
// PASS, package summaries) are skipped, and context lines (goos, goarch,
// cpu) are captured into the report header when present.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"package,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON report: print per-benchmark deltas instead of a report")
	in := flag.String("in", "", "read the current run from a JSON report instead of parsing bench output on stdin")
	gate := flag.String("gate", "", "comma-separated benchmark names whose allocs/op must not regress vs -baseline (exit 1 on regression)")
	gateTol := flag.Float64("gate-tol", 0.10, "allowed fractional allocs/op increase before -gate fails")
	flag.Parse()

	if *gate != "" && *baseline == "" {
		fatal(fmt.Errorf("-gate requires -baseline"))
	}

	var report *Report
	var err error
	if *in != "" {
		report, err = readReport(*in)
	} else {
		report, err = parse(bufio.NewScanner(os.Stdin))
	}
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark records found"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fatal(err)
		}
		regressed := diff(w, base, report, *baseline, splitGate(*gate), *gateTol)
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "bench2json: allocs/op regression past %.0f%% tolerance: %s\n",
				*gateTol*100, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench2json:", err)
	os.Exit(1)
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func splitGate(s string) map[string]bool {
	gated := map[string]bool{}
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			gated[n] = true
		}
	}
	return gated
}

// diff prints a per-benchmark delta table of cur vs base and returns the
// gated benchmarks whose allocs/op regressed beyond tol. Benchmarks present
// on only one side are listed without deltas, and a gated benchmark missing
// from the current run counts as a regression (the gate must not pass
// because the benchmark silently disappeared).
func diff(w io.Writer, base, cur *Report, baseName string, gated map[string]bool, tol float64) []string {
	byName := map[string]*Benchmark{}
	for i := range base.Benchmarks {
		byName[base.Benchmarks[i].Name] = &base.Benchmarks[i]
	}
	seen := map[string]bool{}
	var regressed []string

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tmetric\t%s\tcurrent\tdelta\n", baseName)
	for i := range cur.Benchmarks {
		c := &cur.Benchmarks[i]
		seen[c.Name] = true
		b, ok := byName[c.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t(new)\t-\t-\t-\n", c.Name)
			continue
		}
		row := func(metric string, old, new float64) {
			if old == 0 && new == 0 {
				return
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", c.Name, metric, fnum(old), fnum(new), delta(old, new))
		}
		row("ns/op", b.NsPerOp, c.NsPerOp)
		row("B/op", b.BytesPerOp, c.BytesPerOp)
		row("allocs/op", b.AllocsPerOp, c.AllocsPerOp)
		if old, new := b.Metrics["KIPS"], c.Metrics["KIPS"]; old != 0 || new != 0 {
			row("KIPS", old, new)
		}
		if gated[c.Name] && c.AllocsPerOp > b.AllocsPerOp*(1+tol) {
			regressed = append(regressed, fmt.Sprintf("%s (%.0f -> %.0f allocs/op)", c.Name, b.AllocsPerOp, c.AllocsPerOp))
		}
	}
	for name := range byName {
		if !seen[name] {
			fmt.Fprintf(tw, "%s\t(removed)\t-\t-\t-\n", name)
			if gated[name] {
				regressed = append(regressed, name+" (missing from current run)")
			}
		}
	}
	tw.Flush()
	return regressed
}

// fnum formats a metric value compactly (benchstat-style magnitudes).
func fnum(v float64) string {
	switch a := math.Abs(v); {
	case a >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

func delta(old, new float64) string {
	if old == 0 {
		return "?"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			r.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			r.Benchmarks = append(r.Benchmarks, b)
		}
	}
	return r, sc.Err()
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8  3  123456 ns/op  42.0 some-metric  100 B/op  7 allocs/op
//
// into its typed record. Fields come in (value, unit) pairs after the
// iteration count.
func parseBench(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("too few fields")
	}
	name := fields[0]
	// Strip the -N GOMAXPROCS suffix if present.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}
