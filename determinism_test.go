// Determinism is a load-bearing property of this simulator: the committed
// refdata oracle (figures -check) and the perf trajectory (BENCH_3.json)
// both assume a (benchmark, config, DPUs, scale) point always produces
// identical statistics. These tests pin that down at the public API level,
// including across sweep-engine parallelism, which must only change wall
// clock, never results.
package upim_test

import (
	"context"
	"testing"

	"upim"
)

var determinismPoints = []upim.Point{
	{Benchmark: "VA"},
	{Benchmark: "BS"},
	{Benchmark: "GEMV"},
	{Benchmark: "HST-L"},
	{Benchmark: "TRNS", Tasklets: 8},
}

// sweepCounters runs the point set on a Runner with the given parallelism
// and returns each point's flattened counters, indexed like the input.
func sweepCounters(t *testing.T, parallelism int) [][]float64 {
	t.Helper()
	r, err := upim.NewRunner(
		upim.WithScale(upim.ScaleTiny),
		upim.WithTasklets(16),
		upim.WithParallelism(parallelism),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, len(determinismPoints))
	for sr := range r.Sweep(context.Background(), determinismPoints) {
		if sr.Err != nil {
			t.Fatalf("point %d: %v", sr.Index, sr.Err)
		}
		counters := sr.Result.Stats.Counters()
		vals := make([]float64, len(counters))
		for i, c := range counters {
			vals[i] = c.Value
		}
		out[sr.Index] = vals
	}
	return out
}

// TestSimulationDeterministicAcrossRuns: the same sweep twice yields
// bit-identical counters.
func TestSimulationDeterministicAcrossRuns(t *testing.T) {
	a := sweepCounters(t, 1)
	b := sweepCounters(t, 1)
	comparePointCounters(t, a, b, "second run")
}

// TestSimulationDeterministicAcrossParallelism: simulating under a
// concurrent sweep engine yields exactly the serial results.
func TestSimulationDeterministicAcrossParallelism(t *testing.T) {
	serial := sweepCounters(t, 1)
	parallel := sweepCounters(t, 8)
	comparePointCounters(t, serial, parallel, "parallelism 8")
}

// sweepEnergy runs the point set and returns each point's energy report
// under the default TechProfile.
func sweepEnergy(t *testing.T, parallelism int) []upim.EnergyReport {
	t.Helper()
	r, err := upim.NewRunner(
		upim.WithScale(upim.ScaleTiny),
		upim.WithTasklets(16),
		upim.WithParallelism(parallelism),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]upim.EnergyReport, len(determinismPoints))
	for sr := range r.Sweep(context.Background(), determinismPoints) {
		if sr.Err != nil {
			t.Fatalf("point %d: %v", sr.Index, sr.Err)
		}
		out[sr.Index] = upim.EnergyOf(sr.Result, nil)
	}
	return out
}

// TestEnergyDeterministicAcrossParallelism: the energy model is a pure
// function of the counters, so energy must be bit-identical between serial
// and concurrent sweeps — the property the energy-aware Pareto goals and
// the store's resume contract stand on.
func TestEnergyDeterministicAcrossParallelism(t *testing.T) {
	serial := sweepEnergy(t, 1)
	parallel := sweepEnergy(t, 8)
	for p := range serial {
		if serial[p] != parallel[p] {
			t.Errorf("point %s: energy differs across parallelism:\n  serial   %+v\n  parallel %+v",
				determinismPoints[p].Benchmark, serial[p], parallel[p])
		}
		if serial[p].TotalPJ() <= 0 {
			t.Errorf("point %s: non-positive energy", determinismPoints[p].Benchmark)
		}
	}
}

func comparePointCounters(t *testing.T, want, got [][]float64, label string) {
	t.Helper()
	names := upimCounterNames(t)
	for p := range want {
		if len(want[p]) != len(got[p]) {
			t.Fatalf("%s: point %s: %d vs %d counters", label, determinismPoints[p].Benchmark, len(want[p]), len(got[p]))
		}
		for i := range want[p] {
			if want[p][i] != got[p][i] {
				t.Errorf("%s: point %s counter %s: %v vs %v",
					label, determinismPoints[p].Benchmark, names[i], want[p][i], got[p][i])
			}
		}
	}
}

func upimCounterNames(t *testing.T) []string {
	t.Helper()
	var s upim.Stats
	counters := s.Counters()
	names := make([]string, len(counters))
	for i, c := range counters {
		names[i] = c.Name
	}
	return names
}
