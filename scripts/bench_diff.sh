#!/bin/sh
# bench_diff.sh — run the figure benchmark suite and print per-benchmark
# deltas (ns/op, B/op, allocs/op, KIPS) against the committed baseline
# report, failing on allocs/op regressions in the gated benchmarks. CI runs
# this on every push and uploads the delta table as an artifact.
#
# Environment knobs:
#   BENCHTIME   passed to -benchtime (default 1s, matching how the baseline
#               is generated — shorter settings under-amortize cold-start
#               allocations and make allocs/op incomparable to the baseline)
#   BENCH       benchmark filter regex (default '.', the whole suite)
#   BASELINE    baseline JSON report (default BENCH_10.json)
#   DIFFOUT     also write the delta table to this file (default none)
#   GATE        comma-separated benchmarks whose allocs/op must not regress
set -eu

BENCHTIME="${BENCHTIME:-1s}"
BENCH="${BENCH:-.}"
BASELINE="${BASELINE:-BENCH_10.json}"
DIFFOUT="${DIFFOUT:-}"
GATE="${GATE:-BenchmarkTable1_Config,BenchmarkTable2_Datasets,BenchmarkServeThroughput,BenchmarkHBMPIMRate}"

cd "$(dirname "$0")/.."

# Capture to a file first so a failing/panicking benchmark fails this script
# (a pipeline would discard go test's exit status).
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
if ! go test -bench="$BENCH" -benchmem -run='^$' -benchtime="$BENCHTIME" . >"$tmp" 2>&1; then
	cat "$tmp" >&2
	echo "bench_diff.sh: go test -bench failed" >&2
	exit 1
fi

if [ -n "$DIFFOUT" ]; then
	go run ./tools/bench2json -baseline "$BASELINE" -gate "$GATE" -out "$DIFFOUT" <"$tmp"
	cat "$DIFFOUT"
else
	go run ./tools/bench2json -baseline "$BASELINE" -gate "$GATE" <"$tmp"
fi
