#!/bin/sh
# bench.sh — run the figure benchmark suite and emit BENCH_10.json, the
# machine-readable perf trajectory record (ns/op + headline figure metrics
# per benchmark). CI uploads the JSON as an artifact on every push.
#
# Environment knobs:
#   BENCHTIME   passed to -benchtime (default 1s; use 1x for a smoke run)
#   BENCH       benchmark filter regex (default '.', the whole suite)
#   OUT         output path (default BENCH_10.json)
set -eu

BENCHTIME="${BENCHTIME:-1s}"
BENCH="${BENCH:-.}"
OUT="${OUT:-BENCH_10.json}"

cd "$(dirname "$0")/.."

# Capture to a file first so a failing/panicking benchmark fails this script
# (a pipeline would discard go test's exit status) and never publishes a
# silently truncated JSON record.
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
if ! go test -bench="$BENCH" -benchmem -run='^$' -benchtime="$BENCHTIME" . >"$tmp" 2>&1; then
	cat "$tmp" >&2
	echo "bench.sh: go test -bench failed; not writing $OUT" >&2
	exit 1
fi
cat "$tmp"
go run ./tools/bench2json -out "$OUT" <"$tmp"
echo "bench.sh: wrote $OUT" >&2
