module upim

go 1.24
