package upim

import (
	"context"

	"upim/internal/artifact"
	"upim/internal/serve"
)

// Serving — the simulated PIM system evaluated as a server under load
// rather than a closed sweep (the paper's case study 3 carried to its
// datacenter conclusion). A seeded open-loop request generator (Poisson
// or trace-driven) issues PrIM kernels on behalf of co-located tenants; a
// host-side scheduler batches and places them onto disjoint DPU rank
// groups under a pluggable policy; every run yields per-request latency
// and energy records plus p50/p95/p99, throughput and SLO-attainment
// metrics. The event loop runs in virtual time — no wall clock — so
// serving runs are deterministic and refdata-pinnable like every other
// artifact. See cmd/upimulator's serve subcommand for the CLI front end.

// ServeTenant is one co-located workload: name, kernel mix, weighted-fair
// share, SLO class/target and arrival rate.
type ServeTenant = serve.Tenant

// ServeRequest is one arrival of the workload (also the trace-entry type).
type ServeRequest = serve.Request

// ServeRecord is one request's completed lifecycle: arrival, start,
// finish, batch size, energy share and drop flag.
type ServeRecord = serve.Record

// ServeOptions parameterize one serving run.
type ServeOptions = serve.Options

// ServeResult is one completed serving run: per-request records plus
// per-tenant and overall metrics, with artifact extraction via
// RequestTable and SummaryTable.
type ServeResult = serve.Result

// ServeMetrics summarize a set of completed requests (latency
// percentiles, throughput, energy per request, SLO attainment).
type ServeMetrics = serve.Metrics

// SchedulingPolicy decides which pending request a freed DPU rank group
// serves next. Implementations must be deterministic — see the package
// documentation's determinism invariant.
type SchedulingPolicy = serve.Policy

// Built-in scheduling policies.
var (
	// PolicyFIFO serves requests strictly in arrival order.
	PolicyFIFO = serve.FIFO
	// PolicyWeightedFair serves the tenant with the least served time per
	// weight ("wfq").
	PolicyWeightedFair = serve.WeightedFair
	// PolicySLOAware serves the tightest deadline first ("slo").
	PolicySLOAware = serve.SLOAware
)

// NewSchedulingPolicy constructs a built-in policy by name ("fifo",
// "wfq", "slo") with parameters derived from the tenant set.
func NewSchedulingPolicy(name string, tenants []ServeTenant) (SchedulingPolicy, error) {
	return serve.NewPolicy(name, tenants)
}

// SchedulingPolicyNames lists the built-in policy vocabulary.
func SchedulingPolicyNames() []string { return serve.PolicyNames() }

// Serve profiles the workload's kernels cycle-exactly (through the sweep
// engine's arenas and build cache, MMU enabled by default for tenant
// isolation) and replays the arrival stream through the scheduler in
// virtual time. The result is a pure function of opts: repeat runs — at
// any Parallelism — produce byte-identical request tables.
func Serve(ctx context.Context, opts ServeOptions) (*ServeResult, error) {
	return serve.Serve(ctx, opts)
}

// ServeLoadSweep serves the same workload at every (policy, load) pair
// and returns the p50/p99-vs-offered-load artifact table — the QoS curve
// of the serving evaluation.
func ServeLoadSweep(ctx context.Context, opts ServeOptions, policies []string, loads []float64) (*artifact.Table, error) {
	return serve.LoadSweep(ctx, opts, policies, loads)
}
