package upim_test

import (
	"context"
	"errors"
	"testing"

	"upim"
)

func tinyRunner(t *testing.T, opts ...upim.RunnerOption) *upim.Runner {
	t.Helper()
	r, err := upim.NewRunner(append([]upim.RunnerOption{
		upim.WithScale(upim.ScaleTiny),
		upim.WithTasklets(4),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerDefaults(t *testing.T) {
	r, err := upim.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.Config()
	def := upim.DefaultConfig()
	if cfg.FreqMHz != def.FreqMHz || cfg.NumTasklets != def.NumTasklets || cfg.Mode != upim.ModeScratchpad {
		t.Fatalf("default runner config diverges from Table I: %+v", cfg)
	}
	if r.DPUs() != 1 || r.Scale() != upim.ScaleSmall {
		t.Fatalf("defaults: DPUs=%d scale=%v, want 1/small", r.DPUs(), r.Scale())
	}
	if r.Parallelism() <= 0 {
		t.Fatalf("parallelism must default positive, got %d", r.Parallelism())
	}
}

func TestRunnerOptionApplication(t *testing.T) {
	r, err := upim.NewRunner(
		upim.WithDPUs(4),
		upim.WithScale(upim.ScaleTiny),
		upim.WithMode(upim.ModeCache),
		upim.WithTasklets(8),
		upim.WithILP("DR"),
		upim.WithWatchdog(123),
		upim.WithParallelism(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.Config()
	if r.DPUs() != 4 || r.Scale() != upim.ScaleTiny || cfg.Mode != upim.ModeCache ||
		cfg.NumTasklets != 8 || !cfg.Forwarding || !cfg.UnifiedRF || cfg.IssueWidth != 1 {
		t.Fatalf("options not applied: dpus=%d scale=%v cfg=%+v", r.DPUs(), r.Scale(), cfg)
	}
	if r.Parallelism() != 3 {
		t.Fatalf("parallelism = %d, want 3", r.Parallelism())
	}
}

func TestRunnerOptionErrors(t *testing.T) {
	cases := map[string]upim.RunnerOption{
		"zero DPUs":            upim.WithDPUs(0),
		"zero tasklets":        upim.WithTasklets(0),
		"bad ILP feature":      upim.WithILP("DX"),
		"repeated ILP feature": upim.WithILP("DRFF"),
		"zero parallelism":     upim.WithParallelism(0),
	}
	for name, opt := range cases {
		if _, err := upim.NewRunner(opt); err == nil {
			t.Errorf("%s: NewRunner must reject the option", name)
		}
	}
	// An invalid resulting config is caught at construction too.
	bad := upim.DefaultConfig()
	bad.WRAMBytes = 0
	if _, err := upim.NewRunner(upim.WithConfig(bad)); err == nil {
		t.Error("invalid config must fail NewRunner")
	}
}

func TestRunnerRunTypedErrors(t *testing.T) {
	r := tinyRunner(t)
	ctx := context.Background()
	if _, err := r.Run(ctx, "NOPE"); !errors.Is(err, upim.ErrUnknownBenchmark) {
		t.Errorf("unknown benchmark: got %v, want ErrUnknownBenchmark", err)
	}
	simt := tinyRunner(t, upim.WithMode(upim.ModeSIMT), upim.WithTasklets(64))
	if _, err := simt.Run(ctx, "VA"); !errors.Is(err, upim.ErrUnsupportedMode) {
		t.Errorf("SIMT VA: got %v, want ErrUnsupportedMode", err)
	}
	many := tinyRunner(t, upim.WithTasklets(24))
	if _, err := many.Run(ctx, "VA"); !errors.Is(err, upim.ErrTooManyTasklets) {
		t.Errorf("24 tasklets: got %v, want ErrTooManyTasklets", err)
	}
}

// TestRunnerSweep runs the acceptance sweep: 12 (benchmark x #DPUs) points
// concurrently, every point completing with a verified result, each unique
// kernel built exactly once, and the DPU-count override honoured per point.
func TestRunnerSweep(t *testing.T) {
	r := tinyRunner(t)
	benches := []string{"VA", "RED", "SEL", "TS"}
	dpuCounts := []int{1, 2, 4}
	var points []upim.Point
	for _, b := range benches {
		for _, d := range dpuCounts {
			points = append(points, upim.Point{Benchmark: b, DPUs: d})
		}
	}
	got := make([]*upim.Result, len(points))
	for sr := range r.Sweep(context.Background(), points) {
		if sr.Err != nil {
			t.Fatalf("point %d (%s x%d): %v", sr.Index, sr.Point.Benchmark, sr.Point.DPUs, sr.Err)
		}
		if got[sr.Index] != nil {
			t.Fatalf("point %d delivered twice", sr.Index)
		}
		got[sr.Index] = sr.Result
	}
	for i, res := range got {
		if res == nil {
			t.Fatalf("point %d missing from sweep", i)
		}
		if res.Benchmark != points[i].Benchmark || res.DPUs != points[i].DPUs {
			t.Fatalf("point %d: result (%s x%d) does not match point (%s x%d)",
				i, res.Benchmark, res.DPUs, points[i].Benchmark, points[i].DPUs)
		}
	}
	cs := r.CacheStats()
	if cs.Builds != int64(len(benches)) {
		t.Fatalf("sweep built %d kernels, want exactly %d (one per unique benchmark)", cs.Builds, len(benches))
	}
	if cs.Links != int64(len(benches)) {
		t.Fatalf("sweep linked %d programs, want %d (DPU count does not affect linking)", cs.Links, len(benches))
	}
	if cs.Hits == 0 {
		t.Fatal("sweep never hit the build cache")
	}
}

// TestRunnerSweepCacheAcrossCalls checks the cache persists across Run and
// Sweep invocations on the same Runner.
func TestRunnerSweepCacheAcrossCalls(t *testing.T) {
	r := tinyRunner(t)
	ctx := context.Background()
	if _, err := r.Run(ctx, "VA"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, "VA"); err != nil {
		t.Fatal(err)
	}
	if cs := r.CacheStats(); cs.Builds != 1 {
		t.Fatalf("two identical runs built %d kernels, want 1", cs.Builds)
	}
}

// TestRunnerSweepCancellation cancels mid-sweep and checks the stream ends
// early without delivering every point.
func TestRunnerSweepCancellation(t *testing.T) {
	r := tinyRunner(t, upim.WithParallelism(1))
	var points []upim.Point
	for i := 0; i < 64; i++ {
		points = append(points, upim.Point{Benchmark: "VA"})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	for sr := range r.Sweep(ctx, points) {
		if sr.Err == nil {
			delivered++
		}
		cancel() // first outcome cancels the rest
	}
	if delivered >= len(points) {
		t.Fatalf("cancelled sweep still delivered all %d points", delivered)
	}
}

// TestRunnerSweepPointOverrides checks per-point option overrides apply to
// that point only.
func TestRunnerSweepPointOverrides(t *testing.T) {
	r := tinyRunner(t)
	points := []upim.Point{
		{Benchmark: "BS"},
		{Benchmark: "BS", Options: []upim.RunnerOption{upim.WithMode(upim.ModeCache)}},
		{Benchmark: "BS", Tasklets: 2},
	}
	got := make([]*upim.Result, len(points))
	for sr := range r.Sweep(context.Background(), points) {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		got[sr.Index] = sr.Result
	}
	if got[0].Mode != upim.ModeScratchpad || got[1].Mode != upim.ModeCache {
		t.Fatalf("mode override leaked: %v / %v", got[0].Mode, got[1].Mode)
	}
	if got[0].Tasklets != 4 || got[2].Tasklets != 2 {
		t.Fatalf("tasklet override wrong: %d / %d", got[0].Tasklets, got[2].Tasklets)
	}
	// A broken per-point option surfaces as that point's error.
	bad := []upim.Point{{Benchmark: "VA", Options: []upim.RunnerOption{upim.WithILP("Z")}}}
	for sr := range r.Sweep(context.Background(), bad) {
		if sr.Err == nil {
			t.Fatal("invalid per-point option must fail the point")
		}
	}
	// A per-point watchdog override applies to that point only.
	mixed := []upim.Point{
		{Benchmark: "VA"},
		{Benchmark: "VA", Options: []upim.RunnerOption{upim.WithWatchdog(10)}},
	}
	for sr := range r.Sweep(context.Background(), mixed) {
		if sr.Index == 0 && sr.Err != nil {
			t.Fatalf("default-watchdog point failed: %v", sr.Err)
		}
		if sr.Index == 1 && !errors.Is(sr.Err, upim.ErrWatchdogExpired) {
			t.Fatalf("10-cycle watchdog point returned %v, want ErrWatchdogExpired", sr.Err)
		}
	}
}

func TestRunSuiteOrderingAndErrors(t *testing.T) {
	r := tinyRunner(t)
	names := []string{"TS", "VA", "BS"}
	results, err := r.RunSuite(context.Background(), names...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(names) {
		t.Fatalf("suite returned %d results, want %d", len(results), len(names))
	}
	for i, res := range results {
		if res.Benchmark != names[i] {
			t.Fatalf("result %d is %s, want %s (input order)", i, res.Benchmark, names[i])
		}
	}
	if _, err := r.RunSuite(context.Background(), "VA", "NOPE"); !errors.Is(err, upim.ErrUnknownBenchmark) {
		t.Fatalf("suite with unknown benchmark: %v, want ErrUnknownBenchmark", err)
	}
}
